"""Command-line interface: run sessions and inspect them from a shell.

The paper's analysis tool is a standalone binary; this module is its
equivalent entry point, plus runners for the common experiments::

    python -m repro stream --abr festive --mpdash --wifi 3.8 --lte 3.0
    python -m repro compare --abr bba-c --wifi 2.2 --lte 1.2
    python -m repro sweep --grid wifi_mbps=2.2,3.8 --schemes baseline,rate \
        --jobs 4 --cache-dir .sweep-cache
    python -m repro download --size-mb 5 --deadline 10
    python -m repro trace --out run.jsonl --mpdash
    python -m repro trace --load run.jsonl --diff other.jsonl
    python -m repro stats --mpdash --json
    python -m repro spans --mpdash --chrome spans.json
    python -m repro profile --duration 60
    python -m repro check --mpdash --json
    python -m repro check --load run.jsonl
    python -m repro bench --label ci --compare BENCH_main.json
    python -m repro report --mpdash --out report.html
    python -m repro report --load run.jsonl --out report.html
    python -m repro sweep --schemes baseline,rate --live --report sweep.html
    python -m repro bench --load BENCH_ci.json --html bench.html
    python -m repro fleet --sessions 1000 --arrival diurnal --jobs 4 \
        --checkpoint-dir .fleet --report fleet.html
    python -m repro why --load run.jsonl
    python -m repro why --diff baseline.jsonl mpdash.jsonl
    python -m repro why --record-dir .fleet-records --top 5 --json
    python -m repro fleet --sessions 240 --ledger runs.jsonl
    python -m repro history trend --ledger runs.jsonl --html history.html
    python -m repro history --gate --ledger runs.jsonl
    python -m repro locations
    python -m repro videos

Output discipline: the machine-readable payload (``--json``, the
Prometheus exposition, the Chrome trace, the check/bench reports) goes
to stdout; human-oriented tables, progress lines, notes, and errors go
to stderr, so stdout can always be piped into a parser.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import asdict
from typing import List, Optional

from .abr import abr_names
from .analysis.metrics import SessionMetrics
from .analysis.report import session_report
from .core.deadlines import DEADLINE_MODES, RATE_BASED
from .experiments import (BASELINE, DURATION, FileDownloadConfig, FleetConfig,
                          RATE, SessionConfig, expand_grid, run_file_download,
                          run_fleet, run_schemes, run_session, run_sweep)
from .experiments.tables import fleet_table, format_table, pct, sweep_table
from .obs import (BenchReport, EventBus, FleetCheckpointSaved,
                  FleetDashboard, FleetSessionCaptured,
                  FleetShardCompleted, RecorderConfig, SweepDashboard,
                  SweepRunFailed, SweepRunFinished, Trace,
                  attribute_anomaly, attributions_from_trace,
                  bench_report_html, check_trace, compare_meta,
                  compare_reports, detect_drift, diff_traces,
                  drift_table, dump_chrome_trace, dump_jsonl, gate_ok,
                  history_report_html, load_jsonl,
                  metrics_from_trace, registry_from_trace,
                  render_attributions, render_span_tree, run_bench,
                  session_report_html,
                  spans_from_trace, stock_checkers,
                  summarize_attributions, trend_document,
                  triage_report_html, write_report)
from .obs.ledger import RunLedger
from .obs.spans import spans_to_dicts
from .workloads import (ARRIVAL_MODELS, VIDEO_LADDERS,
                        field_study_locations, video_names)


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="MP-DASH reproduction: preference-aware multipath "
                    "video streaming")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    stream = commands.add_parser(
        "stream", help="run one streaming session and analyze it")
    _add_network_args(stream)
    stream.add_argument("--video", default="big_buck_bunny",
                        choices=video_names())
    stream.add_argument("--abr", default="festive", choices=abr_names())
    stream.add_argument("--mpdash", action="store_true",
                        help="enable the MP-DASH scheduler")
    stream.add_argument("--deadline-mode", default=RATE_BASED,
                        choices=list(DEADLINE_MODES))
    stream.add_argument("--alpha", type=float, default=1.0)
    stream.add_argument("--duration", type=float, default=300.0,
                        help="video length to stream, seconds")
    stream.add_argument("--visualize", action="store_true",
                        help="print the Figure-8 chunk strip and "
                             "throughput patterns")
    stream.add_argument("--ledger", metavar="FILE", default=None,
                        help="append the session's headline record to "
                             "this run-ledger JSONL file")

    compare = commands.add_parser(
        "compare", help="baseline vs MP-DASH (duration & rate deadlines)")
    _add_network_args(compare)
    compare.add_argument("--video", default="big_buck_bunny",
                         choices=video_names())
    compare.add_argument("--abr", default="festive", choices=abr_names())
    compare.add_argument("--duration", type=float, default=300.0)
    compare.add_argument("--jobs", type=int, default=1,
                         help="run the schemes on this many processes")
    compare.add_argument("--cache-dir", default=None,
                        help="reuse cached session results from this "
                             "directory")

    sweep = commands.add_parser(
        "sweep", help="run a config grid in parallel, with result caching")
    _add_network_args(sweep)
    sweep.add_argument("--video", default="big_buck_bunny",
                       choices=video_names())
    sweep.add_argument("--abr", default="festive", choices=abr_names())
    sweep.add_argument("--duration", type=float, default=300.0,
                       help="video length to stream, seconds")
    sweep.add_argument("--grid", action="append", default=[],
                       metavar="FIELD=V1,V2,...",
                       help="sweep one SessionConfig field over a value "
                            "list; repeatable, the grid is the cartesian "
                            "product (e.g. --grid wifi_mbps=2.2,3.8 "
                            "--grid alpha=0.8,1.0)")
    sweep.add_argument("--schemes", default=None, metavar="S1,S2,...",
                       help="shorthand for --grid scheme=... "
                            f"(choices: {', '.join((BASELINE, DURATION, RATE))})")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process)")
    sweep.add_argument("--cache-dir", default=None,
                       help="directory for on-disk result caching")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-run wall-clock timeout, seconds")
    sweep.add_argument("--retries", type=int, default=0,
                       help="retries per failing run before recording a "
                            "failure")
    sweep.add_argument("--json", action="store_true",
                       help="machine-readable report instead of a table")
    sweep.add_argument("--live", action="store_true",
                       help="in-place terminal dashboard on stderr while "
                            "the sweep runs (auto-disabled when not a TTY)")
    sweep.add_argument("--report", metavar="FILE", default=None,
                       help="write the self-contained HTML sweep report "
                            "to FILE")
    sweep.add_argument("--bench", action="append", default=[],
                       metavar="BENCH.json",
                       help="BENCH_*.json report(s) to chart in the sweep "
                            "report's performance panel; repeatable, in "
                            "trajectory order")
    sweep.add_argument("--bench-baseline", metavar="BENCH.json",
                       default=None,
                       help="baseline BENCH_*.json the report compares "
                            "the latest --bench report against")
    sweep.add_argument("--ledger", metavar="FILE", default=None,
                       help="append the sweep's headline record to this "
                            "run-ledger JSONL file")

    download = commands.add_parser(
        "download", help="one deadline-bounded file download")
    _add_network_args(download)
    download.add_argument("--size-mb", type=float, default=5.0)
    download.add_argument("--deadline", type=float, default=10.0)
    download.add_argument("--alpha", type=float, default=1.0)
    download.add_argument("--no-mpdash", action="store_true")

    trace = commands.add_parser(
        "trace", help="capture, replay, and diff JSONL session traces")
    _add_network_args(trace)
    trace.add_argument("--video", default="big_buck_bunny",
                       choices=video_names())
    trace.add_argument("--abr", default="festive", choices=abr_names())
    trace.add_argument("--mpdash", action="store_true",
                       help="enable the MP-DASH scheduler")
    trace.add_argument("--deadline-mode", default=RATE_BASED,
                       choices=list(DEADLINE_MODES))
    trace.add_argument("--alpha", type=float, default=1.0)
    trace.add_argument("--duration", type=float, default=300.0,
                       help="video length to stream, seconds")
    trace.add_argument("--out", metavar="FILE",
                       help="export the captured trace as JSONL")
    trace.add_argument("--load", metavar="FILE",
                       help="analyze an existing trace offline instead of "
                            "running a session")
    trace.add_argument("--diff", metavar="FILE",
                       help="second trace to compare metrics against")
    trace.add_argument("--json", action="store_true",
                       help="machine-readable output instead of tables")

    stats = commands.add_parser(
        "stats", help="the standard metrics registry of one session "
                      "(Prometheus exposition or JSON)")
    _add_session_args(stats)
    stats.add_argument("--load", metavar="FILE",
                       help="rebuild the registry offline from a JSONL "
                            "trace instead of running a session")
    stats.add_argument("--json", action="store_true",
                       help="JSON dump instead of the Prometheus text "
                            "exposition")

    spans = commands.add_parser(
        "spans", help="the causal span tree of one session (chunk → "
                      "request → transfer → deadline)")
    _add_session_args(spans)
    spans.add_argument("--load", metavar="FILE",
                       help="rebuild spans offline from a JSONL trace "
                            "instead of running a session")
    spans.add_argument("--chrome", metavar="FILE",
                       help="also export Chrome trace-event JSON "
                            "(loadable in Perfetto)")
    spans.add_argument("--json", action="store_true",
                       help="span records as JSON instead of the tree view")
    spans.add_argument("--limit", type=int, default=None, metavar="N",
                       help="print at most N spans in the tree view")

    profile = commands.add_parser(
        "profile", help="wall-clock hot-path report of one session "
                        "(bus events, handlers, simulator callbacks)")
    _add_session_args(profile)
    profile.add_argument("--top", type=int, default=15, metavar="N",
                         help="rows per profile section")
    profile.add_argument("--json", action="store_true",
                         help="raw timings as JSON instead of the report")

    check = commands.add_parser(
        "check", help="judge one session (live or from a trace) against "
                      "the stock cross-layer invariants")
    _add_session_args(check)
    check.add_argument("--load", metavar="FILE",
                       help="check an exported JSONL trace offline "
                            "instead of running a session")
    check.add_argument("--max-miss-rate", type=float, default=0.25,
                       metavar="R",
                       help="deadline-miss-rate budget (fraction) for "
                            "the SLO checker")
    check.add_argument("--max-stall-ratio", type=float, default=0.10,
                       metavar="R",
                       help="stall-time-ratio budget (fraction) for the "
                            "SLO checker")
    check.add_argument("--json", action="store_true",
                       help="structured verdict report instead of the "
                            "summary")

    bench = commands.add_parser(
        "bench", help="run the pinned performance scenarios and compare "
                      "against a stored baseline")
    bench.add_argument("--scenarios", default=None, metavar="S1,S2,...",
                       help="subset of scenarios to run (default: all)")
    bench.add_argument("--repeat", type=int, default=1, metavar="N",
                       help="repetitions per scenario (best-of)")
    bench.add_argument("--label", default="local",
                       help="label stored in the report (default: local)")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="report path (default: BENCH_<label>.json; "
                            "'-' to skip writing)")
    bench.add_argument("--load", metavar="FILE",
                       help="reuse an existing report instead of "
                            "measuring (for compare-only runs)")
    bench.add_argument("--compare", metavar="BASELINE", default=None,
                       help="baseline BENCH_*.json to gate against; "
                            "exits nonzero on regression")
    bench.add_argument("--threshold", type=float, default=0.25,
                       metavar="T",
                       help="allowed fractional drift per metric before "
                            "a comparison counts as a regression")
    bench.add_argument("--json", action="store_true",
                       help="report as JSON instead of the table")
    bench.add_argument("--html", metavar="FILE", default=None,
                       help="also render the report (and the --compare "
                            "verdict, when given) as a self-contained "
                            "HTML page")
    bench.add_argument("--ledger", metavar="FILE", default=None,
                       help="append the measured report to this "
                            "run-ledger JSONL file (ignored with --load)")

    report = commands.add_parser(
        "report", help="self-contained HTML session report (live run or "
                       "an exported JSONL trace)")
    _add_session_args(report)
    report.add_argument("--load", metavar="FILE",
                        help="render an exported JSONL trace offline "
                             "instead of running a session")
    report.add_argument("--out", metavar="FILE", default="report.html",
                        help="output path (default: report.html)")

    fleet = commands.add_parser(
        "fleet", help="simulate a fleet-scale session population in "
                      "bounded memory, with checkpoints")
    fleet.add_argument("--sessions", type=int, default=1000,
                       help="fleet size (sessions drawn from the "
                            "workload model)")
    fleet.add_argument("--arrival", default="poisson",
                       choices=list(ARRIVAL_MODELS),
                       help="session-arrival model")
    fleet.add_argument("--horizon", type=float, default=86400.0,
                       help="campaign window, seconds (arrivals land "
                            "inside it)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="workload seed: same seed, byte-identical "
                            "population registry")
    fleet.add_argument("--video", default="big_buck_bunny",
                       choices=video_names())
    fleet.add_argument("--abr", default="festive", choices=abr_names())
    fleet.add_argument("--scheme", default=RATE,
                       choices=list((BASELINE, DURATION, RATE)),
                       help="evaluation scheme applied to every session")
    fleet.add_argument("--duration", type=float, default=60.0,
                       help="video length per session, seconds")
    fleet.add_argument("--wifi-only-fraction", type=float, default=0.05,
                       metavar="F",
                       help="fraction of sessions without a cellular path")
    fleet.add_argument("--shard-size", type=int, default=50, metavar="N",
                       help="sessions per shard (memory/progress "
                            "granularity)")
    fleet.add_argument("--kernel", default="fast",
                       choices=("fast", "tick"),
                       help="simulation kernel for every session")
    fleet.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process)")
    fleet.add_argument("--retries", type=int, default=1,
                       help="retries per shard after a worker crash")
    fleet.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="directory for atomic progress checkpoints")
    fleet.add_argument("--checkpoint-every", type=int, default=10,
                       metavar="N", help="checkpoint every N shards")
    fleet.add_argument("--resume", action="store_true",
                       help="resume from the checkpoint in "
                            "--checkpoint-dir")
    fleet.add_argument("--stop-after", type=int, default=None, metavar="N",
                       help="simulate at most N new shards this "
                            "invocation (deterministic partial run)")
    fleet.add_argument("--json", action="store_true",
                       help="machine-readable report (population + "
                            "registry) instead of the table")
    fleet.add_argument("--report", metavar="FILE", default=None,
                       help="write the self-contained HTML population "
                            "report to FILE")
    fleet.add_argument("--live", action="store_true",
                       help="live stderr dashboard (worker lanes, "
                            "recorder captures, ETA; TTY only)")
    fleet.add_argument("--record-dir", metavar="DIR", default=None,
                       help="arm the flight recorder: captured traces "
                            "and the triage manifest go under DIR")
    fleet.add_argument("--record-head-every", type=int, default=0,
                       metavar="N",
                       help="also keep every Nth session unconditionally "
                            "(0 = off)")
    fleet.add_argument("--record-miss-threshold", type=int, default=10,
                       metavar="N",
                       help="capture sessions with >= N deadline misses")
    fleet.add_argument("--record-stall-threshold", type=int, default=3,
                       metavar="N",
                       help="capture sessions with >= N stalls")
    fleet.add_argument("--record-bottom-k", type=int, default=1,
                       metavar="K",
                       help="capture each shard's K worst sessions "
                            "by QoE")
    fleet.add_argument("--fault-session", type=int, default=None,
                       metavar="I",
                       help="inject the seeded scheduler fault into "
                            "session index I (smoke/testing)")
    fleet.add_argument("--triage-top", type=int, default=0, metavar="K",
                       help="with --report: render mini session reports "
                            "for the K worst captured anomalies")
    fleet.add_argument("--ledger", metavar="FILE", default=None,
                       help="append the campaign's headline record to "
                            "this run-ledger JSONL file")

    triage = commands.add_parser(
        "triage", help="rank and replay flight-recorder captures from "
                       "a fleet campaign")
    triage.add_argument("--record-dir", required=True, metavar="DIR",
                        help="recorder artifact root (or one campaign's "
                             "subdirectory)")
    triage.add_argument("--fleet-key", default=None, metavar="PREFIX",
                        help="campaign key prefix when DIR holds "
                             "several campaigns")
    triage.add_argument("--top", type=_positive_int, default=10,
                        metavar="K",
                        help="show the K worst anomalies (default 10)")
    triage.add_argument("--json", action="store_true",
                        help="machine-readable ranking + replay verdicts "
                             "on stdout")
    triage.add_argument("--html", metavar="FILE", default=None,
                        help="write the triage report (plus mini session "
                             "reports beside it) to FILE")

    why = commands.add_parser(
        "why", help="attribute every anomaly to a root cause: live "
                    "session, loaded trace, recorded captures, or a "
                    "two-trace diff")
    _add_session_args(why)
    why.add_argument("--load", metavar="FILE", default=None,
                     help="attribute an exported trace (.jsonl or "
                          ".jsonl.gz) instead of running a session")
    why.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                     help="differential attribution: align two traces "
                          "of the same manifest chunk-by-chunk and rank "
                          "what changed")
    why.add_argument("--record-dir", metavar="DIR", default=None,
                     help="attribute a campaign's flight-recorder "
                          "captures under this artifact root")
    why.add_argument("--fleet-key", default=None, metavar="PREFIX",
                     help="campaign key prefix when DIR holds several "
                          "campaigns")
    why.add_argument("--top", type=_positive_int, default=10,
                     metavar="K",
                     help="explain at most the K worst entries "
                          "(default 10)")
    why.add_argument("--json", action="store_true",
                     help="machine-readable verdicts on stdout")

    history = commands.add_parser(
        "history", help="longitudinal trends and drift gating over a "
                        "run-ledger JSONL file")
    history.add_argument("action", nargs="?", default="list",
                         choices=("list", "show", "trend", "diff",
                                  "gate"),
                         help="list entries, show/diff entries by id "
                              "prefix, render trends, or gate on drift "
                              "(default: list)")
    history.add_argument("ids", nargs="*", metavar="ENTRY",
                         help="entry-id prefix(es): one for show, two "
                              "for diff")
    history.add_argument("--ledger", required=True, metavar="FILE",
                         help="the run-ledger JSONL file to read")
    history.add_argument("--gate", action="store_true", dest="gate_flag",
                         help="shorthand for the gate action (exit 1 on "
                              "ERROR-severity drift)")
    history.add_argument("--kind", default=None,
                         choices=("session", "sweep", "fleet", "bench"),
                         help="restrict to entries of this kind")
    history.add_argument("--last", type=_positive_int, default=None,
                         metavar="N",
                         help="restrict to the last N (matching) "
                              "entries")
    history.add_argument("--json", action="store_true",
                         help="machine-readable document on stdout")
    history.add_argument("--html", metavar="FILE", default=None,
                         help="with trend: write the longitudinal HTML "
                              "report to FILE")
    history.add_argument("--bench", action="append", default=[],
                         metavar="BENCH.json",
                         help="with trend --html: BENCH_*.json "
                              "report(s) for the trajectory panel; "
                              "repeatable, in order")

    commands.add_parser("locations",
                        help="list the 33-location field-study catalog")
    commands.add_parser("videos", help="list the Table-3 video ladders")
    return parser


def _positive_int(text: str) -> int:
    """Argparse type for ``--top``-style counts: > 0 or a clean error
    (argparse turns the raise into a usage message and exit code 2)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer: {text!r}")
    return value


def _add_session_args(parser: argparse.ArgumentParser) -> None:
    """The shared run-one-session argument block (stats/spans/profile)."""
    _add_network_args(parser)
    parser.add_argument("--video", default="big_buck_bunny",
                        choices=video_names())
    parser.add_argument("--abr", default="festive", choices=abr_names())
    parser.add_argument("--mpdash", action="store_true",
                        help="enable the MP-DASH scheduler")
    parser.add_argument("--deadline-mode", default=RATE_BASED,
                        choices=list(DEADLINE_MODES))
    parser.add_argument("--alpha", type=float, default=1.0)
    parser.add_argument("--duration", type=float, default=300.0,
                        help="video length to stream, seconds")


def _add_network_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel", default="fast",
                        choices=("fast", "tick"),
                        help="simulation kernel: event-driven analytic "
                             "(fast, default) or the fixed-interval "
                             "reference (tick)")
    parser.add_argument("--wifi", type=float, default=3.8,
                        help="WiFi bandwidth, Mbps")
    parser.add_argument("--lte", type=float, default=3.0,
                        help="LTE bandwidth, Mbps")
    parser.add_argument("--wifi-rtt", type=float, default=50.0,
                        help="WiFi RTT, ms")
    parser.add_argument("--lte-rtt", type=float, default=55.0,
                        help="LTE RTT, ms")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_stream(args: argparse.Namespace) -> int:
    config = SessionConfig(
        video=args.video, abr=args.abr, mpdash=args.mpdash,
        deadline_mode=args.deadline_mode, alpha=args.alpha,
        wifi_mbps=args.wifi, lte_mbps=args.lte,
        wifi_rtt_ms=args.wifi_rtt, lte_rtt_ms=args.lte_rtt,
        video_duration=args.duration, kernel=args.kernel)
    result = run_session(config, ledger=args.ledger)
    metrics = result.metrics
    # Human-oriented tables go to stderr (the stats/spans/profile
    # convention): stdout stays machine-parseable for every command.
    print(format_table(
        ["metric", "value"],
        [["finished", result.finished],
         ["cellular MB", f"{metrics.cellular_bytes / 1e6:.2f}"],
         ["cellular share", pct(metrics.cellular_fraction)],
         ["radio energy J", f"{metrics.radio_energy:.1f}"],
         ["playback bitrate Mbps", f"{metrics.mean_bitrate_mbps:.2f}"],
         ["quality switches", metrics.quality_switches],
         ["stalls", metrics.stall_count],
         ["startup delay s", f"{metrics.startup_delay:.2f}"
          if metrics.startup_delay is not None else "-"]],
        title=f"{args.video} / {args.abr} "
              f"({'MP-DASH ' + args.deadline_mode if args.mpdash else 'vanilla MPTCP'})"),
        file=sys.stderr)
    if args.visualize:
        print(file=sys.stderr)
        print(session_report(result), file=sys.stderr)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    base = SessionConfig(
        video=args.video, abr=args.abr, wifi_mbps=args.wifi,
        lte_mbps=args.lte, wifi_rtt_ms=args.wifi_rtt,
        lte_rtt_ms=args.lte_rtt, video_duration=args.duration,
        kernel=args.kernel)
    comparison = run_schemes(base, jobs=args.jobs,
                             cache_dir=args.cache_dir)
    rows = []
    for scheme in (BASELINE, DURATION, RATE):
        metrics = comparison.results[scheme].metrics
        rows.append([
            scheme, f"{metrics.cellular_bytes / 1e6:.2f}",
            f"{metrics.radio_energy:.1f}",
            f"{metrics.mean_bitrate_mbps:.2f}", metrics.stall_count,
            pct(comparison.cellular_savings(scheme))
            if scheme != BASELINE else "-",
            pct(comparison.cellular_energy_savings(scheme))
            if scheme != BASELINE else "-"])
    print(format_table(
        ["scheme", "cell MB", "energy J", "bitrate", "stalls",
         "cell saved", "LTE-energy saved"],
        rows, title=f"{args.video} / {args.abr} @ "
                    f"W{args.wifi}/L{args.lte} Mbps"),
        file=sys.stderr)
    return 0


def _grid_value(text: str):
    """Coerce one grid value: int, then float, bool, none, else string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            pass
    return text


def parse_grid(specs) -> dict:
    """``FIELD=V1,V2,...`` arguments -> an :func:`expand_grid` mapping."""
    grid = {}
    for spec in specs:
        name, sep, values = spec.partition("=")
        name = name.strip()
        if not sep or not name or not values:
            raise ValueError(
                f"malformed --grid {spec!r} (expected FIELD=V1,V2,...)")
        if name in grid:
            raise ValueError(f"duplicate --grid field {name!r}")
        grid[name] = [_grid_value(v.strip()) for v in values.split(",")]
    return grid


def _sweep_report(result) -> dict:
    """The structured description ``repro sweep --json`` prints."""
    runs = []
    for run in result.runs:
        entry = {"index": run.index, "key": run.config_key,
                 "status": "ok" if run.ok else "failed",
                 "cached": run.cached, "attempts": run.attempts,
                 "elapsed": run.elapsed}
        if run.summary is not None:
            entry["summary"] = run.summary.to_dict()
        if run.failure is not None:
            entry["failure"] = run.failure.to_dict()
        runs.append(entry)
    return {"jobs": result.jobs, "wall_clock": result.wall_clock,
            "total": len(result.runs),
            "succeeded": sum(1 for r in result.runs if r.ok),
            "failed": len(result.failures),
            "cache_hits": result.cache_hits, "runs": runs}


def cmd_sweep(args: argparse.Namespace) -> int:
    base = SessionConfig(
        video=args.video, abr=args.abr, wifi_mbps=args.wifi,
        lte_mbps=args.lte, wifi_rtt_ms=args.wifi_rtt,
        lte_rtt_ms=args.lte_rtt, video_duration=args.duration,
        kernel=args.kernel)
    try:
        grid = parse_grid(args.grid)
        if args.schemes is not None:
            if "scheme" in grid:
                raise ValueError("--schemes conflicts with --grid scheme=")
            grid["scheme"] = [s.strip() for s in args.schemes.split(",")]
        configs = expand_grid(base, grid)
    except ValueError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2

    bus = EventBus()
    dashboard = None
    if args.live:
        dashboard = SweepDashboard()
        dashboard.attach(bus)
    if not args.json and (dashboard is None or not dashboard.enabled):
        # Progress goes to stderr so stdout carries only the final table
        # (or, with --json, only the JSON document).  The line-per-run
        # feed yields to the in-place dashboard when --live is active.
        total = len(configs)
        bus.subscribe(SweepRunFinished, lambda e: print(
            f"[{e.time:8.2f}s] run {e.index + 1}/{total} {e.key[:12]} "
            f"{'cached' if e.cached else f'done in {e.elapsed:.2f}s'}",
            file=sys.stderr))
        bus.subscribe(SweepRunFailed, lambda e: print(
            f"[{e.time:8.2f}s] run {e.index + 1}/{total} {e.key[:12]} "
            f"FAILED ({e.kind}, {e.attempts} attempt(s)): {e.error}",
            file=sys.stderr))
    result = run_sweep(configs, jobs=args.jobs, cache_dir=args.cache_dir,
                       timeout=args.timeout, retries=args.retries, bus=bus,
                       ledger=args.ledger)
    if args.json:
        print(json.dumps(_sweep_report(result), sort_keys=True))
    else:
        print(sweep_table(result), file=sys.stderr)
    if args.report is not None:
        bench_reports = []
        for path in args.bench:
            try:
                bench_reports.append(BenchReport.load(path))
            except (OSError, ValueError, KeyError) as exc:
                print(f"repro sweep: cannot load bench report {path}: "
                      f"{exc}", file=sys.stderr)
                return 2
        baseline = None
        if args.bench_baseline is not None:
            try:
                baseline = BenchReport.load(args.bench_baseline)
            except (OSError, ValueError, KeyError) as exc:
                print(f"repro sweep: cannot load bench baseline "
                      f"{args.bench_baseline}: {exc}", file=sys.stderr)
                return 2
        result.export_report(args.report, bench_reports=bench_reports,
                             baseline=baseline)
        print(f"sweep report written to {args.report}", file=sys.stderr)
    # Failures are data, not harness errors: the sweep completed.
    return 0


def cmd_download(args: argparse.Namespace) -> int:
    result = run_file_download(FileDownloadConfig(
        size=args.size_mb * 1e6, deadline=args.deadline,
        mpdash=not args.no_mpdash, alpha=args.alpha,
        wifi_mbps=args.wifi, lte_mbps=args.lte,
        wifi_rtt_ms=args.wifi_rtt, lte_rtt_ms=args.lte_rtt,
        kernel=args.kernel))
    print(format_table(
        ["metric", "value"],
        [["finished at s", f"{result.duration:.2f}"],
         ["deadline met", not result.missed_deadline],
         ["cellular MB", f"{result.cellular_bytes / 1e6:.2f}"],
         ["cellular share", pct(result.cellular_fraction)],
         ["radio energy J", f"{result.radio_energy:.1f}"]],
        title=f"{args.size_mb:.0f}MB download, D={args.deadline:.0f}s "
              f"({'vanilla' if args.no_mpdash else 'MP-DASH'})"))
    return 0


def _trace_summary(source: str, trace: Trace,
                   metrics: SessionMetrics) -> dict:
    """The structured description ``repro trace`` reports per trace."""
    return {
        "source": source,
        "meta": asdict(trace.meta),
        "events": {"total": len(trace.events),
                   "by_type": trace.count_by_type()},
        "metrics": asdict(metrics),
    }


def _print_trace_summary(summary: dict) -> None:
    metrics = summary["metrics"]
    meta = summary["meta"]
    rows = [["events", summary["events"]["total"]],
            ["session duration s", f"{meta['session_duration']:.2f}"],
            ["cellular MB",
             f"{metrics['bytes_per_path'].get('cellular', 0.0) / 1e6:.2f}"],
            ["energy J", f"{metrics['energy_total']:.1f}"],
            ["mean bitrate Mbps", f"{metrics['mean_bitrate'] * 8 / 1e6:.2f}"],
            ["quality switches", metrics["quality_switches"]],
            ["stalls", metrics["stall_count"]],
            ["chunks", metrics["chunk_count"]]]
    print(format_table(["metric", "value"], rows,
                       title=f"trace {summary['source']}"))


def cmd_trace(args: argparse.Namespace) -> int:
    """Capture a session's event stream, or analyze/diff exported ones.

    Three modes: run-and-capture (optionally ``--out`` to a JSONL file),
    ``--load`` to re-run the analyzer offline on an exported trace, and
    ``--diff`` to compare a second trace's metrics against the first.
    """
    if args.load is not None:
        try:
            trace = load_jsonl(args.load)
        except (OSError, ValueError) as exc:
            print(f"repro trace: cannot load {args.load}: {exc}",
                  file=sys.stderr)
            return 1
        if args.out is not None:
            dump_jsonl(args.out, trace.events, trace.meta)
        summary = _trace_summary(args.load, trace, metrics_from_trace(trace))
    else:
        config = SessionConfig(
            video=args.video, abr=args.abr, mpdash=args.mpdash,
            deadline_mode=args.deadline_mode, alpha=args.alpha,
            wifi_mbps=args.wifi, lte_mbps=args.lte,
            wifi_rtt_ms=args.wifi_rtt, lte_rtt_ms=args.lte_rtt,
            video_duration=args.duration, record_trace=True,
            kernel=args.kernel)
        result = run_session(config)
        if args.out is not None:
            result.export_trace(args.out)
        trace = Trace(meta=result.trace_meta, events=result.events)
        summary = _trace_summary("live", trace, result.metrics)

    if args.diff is not None:
        try:
            other = load_jsonl(args.diff)
        except (OSError, ValueError) as exc:
            print(f"repro trace: cannot load {args.diff}: {exc}",
                  file=sys.stderr)
            return 1
        other_summary = _trace_summary(args.diff, other,
                                       metrics_from_trace(other))
        scalars = ("energy_total", "stall_count", "total_stall_time",
                   "quality_switches", "mean_bitrate", "session_duration",
                   "chunk_count")
        delta = {key: other_summary["metrics"][key] - summary["metrics"][key]
                 for key in scalars}
        report = {"a": summary, "b": other_summary, "delta": delta}
        if args.json:
            print(json.dumps(report, sort_keys=True))
        else:
            _print_trace_summary(summary)
            _print_trace_summary(other_summary)
            print(format_table(
                ["metric", "a", "b", "delta"],
                [[key, summary["metrics"][key], other_summary["metrics"][key],
                  delta[key]] for key in scalars],
                title="trace diff (b - a)"))
        return 0

    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        _print_trace_summary(summary)
    if args.out is not None:
        # stderr: stdout stays pure JSON/table for parsers.
        print(f"trace written to {args.out}", file=sys.stderr)
    return 0


def _session_config(args: argparse.Namespace, **overrides) -> SessionConfig:
    """A :class:`SessionConfig` from the shared session argument block."""
    return SessionConfig(
        video=args.video, abr=args.abr, mpdash=args.mpdash,
        deadline_mode=args.deadline_mode, alpha=args.alpha,
        wifi_mbps=args.wifi, lte_mbps=args.lte,
        wifi_rtt_ms=args.wifi_rtt, lte_rtt_ms=args.lte_rtt,
        video_duration=args.duration, kernel=args.kernel, **overrides)


def cmd_stats(args: argparse.Namespace) -> int:
    """The standard metrics registry, live or rebuilt from a trace."""
    if args.load is not None:
        try:
            trace = load_jsonl(args.load)
        except (OSError, ValueError) as exc:
            print(f"repro stats: cannot load {args.load}: {exc}",
                  file=sys.stderr)
            return 1
        registry = registry_from_trace(trace)
        print(f"registry rebuilt from {args.load} "
              f"({len(trace.events)} events)", file=sys.stderr)
    else:
        result = run_session(_session_config(args, collect_metrics=True))
        registry = result.metrics_registry
    if args.json:
        print(json.dumps(registry.to_dict(), sort_keys=True))
    else:
        sys.stdout.write(registry.render_prometheus())
    return 0


def cmd_spans(args: argparse.Namespace) -> int:
    """The causal span tree, live or rebuilt from a trace."""
    if args.load is not None:
        try:
            trace = load_jsonl(args.load)
        except (OSError, ValueError) as exc:
            print(f"repro spans: cannot load {args.load}: {exc}",
                  file=sys.stderr)
            return 1
        spans = spans_from_trace(trace)
        print(f"spans rebuilt from {args.load} "
              f"({len(trace.events)} events)", file=sys.stderr)
    else:
        result = run_session(_session_config(args, collect_spans=True))
        spans = result.spans
    if args.chrome is not None:
        dump_chrome_trace(args.chrome, spans)
        print(f"chrome trace written to {args.chrome} "
              f"(open in Perfetto or chrome://tracing)", file=sys.stderr)
    if args.json:
        print(json.dumps(spans_to_dicts(spans), sort_keys=True))
    else:
        print(render_span_tree(spans, max_spans=args.limit))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run one session under the profiler and print the hot-path report."""
    result = run_session(_session_config(args), profile=True)
    profiler = result.profile
    if args.json:
        print(json.dumps(profiler.to_dict(), sort_keys=True))
    else:
        sys.stdout.write(profiler.report(top=args.top))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Judge one session against the stock invariant battery.

    Exit status: 0 when no ERROR-severity violation was found (warnings
    are reported but do not fail the check), 1 on ERROR violations, 2
    when a trace could not be loaded.
    """
    checkers = stock_checkers(max_miss_rate=args.max_miss_rate,
                              max_stall_ratio=args.max_stall_ratio)
    if args.load is not None:
        try:
            trace = load_jsonl(args.load)
        except (OSError, ValueError) as exc:
            print(f"repro check: cannot load {args.load}: {exc}",
                  file=sys.stderr)
            return 2
        report = check_trace(trace, checkers)
        print(f"checked {args.load} offline", file=sys.stderr)
    else:
        result = run_session(_session_config(args), checkers=checkers)
        report = result.check_report
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    """Measure the pinned performance scenarios, optionally gated.

    Exit status: 0 clean, 1 when ``--compare`` found a regression, 2 on
    bad arguments or unreadable report files.
    """
    if args.load is not None:
        try:
            report = BenchReport.load(args.load)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro bench: cannot load {args.load}: {exc}",
                  file=sys.stderr)
            return 2
    else:
        scenarios = ([s.strip() for s in args.scenarios.split(",")]
                     if args.scenarios is not None else None)
        try:
            report = run_bench(
                scenarios=scenarios, repeats=args.repeat, label=args.label,
                progress=lambda message: print(message, file=sys.stderr),
                ledger=args.ledger)
        except ValueError as exc:
            print(f"repro bench: {exc}", file=sys.stderr)
            return 2
        out = args.out if args.out is not None else \
            f"BENCH_{args.label}.json"
        if out != "-":
            report.dump(out)
            print(f"benchmark report written to {out}", file=sys.stderr)

    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.render(), file=sys.stderr)

    baseline = None
    if args.compare is not None:
        try:
            baseline = BenchReport.load(args.compare)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro bench: cannot load baseline {args.compare}: "
                  f"{exc}", file=sys.stderr)
            return 2
    if args.html is not None:
        write_report(args.html, bench_report_html(
            [report], baseline=baseline, threshold=args.threshold))
        print(f"bench HTML report written to {args.html}",
              file=sys.stderr)
    if baseline is not None:
        # Environment mismatches never gate, but they change what a
        # gating verdict means — surface them before the comparison.
        for mismatch in compare_meta(report, baseline):
            print(f"repro bench: warning: {mismatch.render()}",
                  file=sys.stderr)
        regressions = compare_reports(report, baseline,
                                      threshold=args.threshold)
        if regressions:
            print(f"PERFORMANCE REGRESSION vs {args.compare} "
                  f"(threshold {args.threshold:.0%}):", file=sys.stderr)
            for regression in regressions:
                print(f"  {regression}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.compare} "
              f"(threshold {args.threshold:.0%})", file=sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render the self-contained HTML session report.

    With ``--load`` the report is a pure function of the JSONL trace —
    byte-identical to the one a live ``run_session(report=...)`` writes
    for the same session.  Without it, one session is run (recording a
    trace, the metrics registry, and spans) and rendered directly.
    """
    if args.load is not None:
        try:
            trace = load_jsonl(args.load)
        except (OSError, ValueError) as exc:
            print(f"repro report: cannot load {args.load}: {exc}",
                  file=sys.stderr)
            return 1
        write_report(args.out, session_report_html(trace))
        print(f"session report written to {args.out} "
              f"(from {args.load}, {len(trace.events)} events)",
              file=sys.stderr)
    else:
        run_session(_session_config(args, collect_metrics=True,
                                    collect_spans=True),
                    report=args.out)
        print(f"session report written to {args.out}", file=sys.stderr)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run (or resume) a fleet campaign and report its population.

    Exit status: 0 on a completed (or deliberately ``--stop-after``
    bounded) campaign, 1 when the engine gave up on a shard, 2 on bad
    arguments or a checkpoint belonging to a different campaign.
    """
    try:
        config = FleetConfig(
            sessions=args.sessions, arrival=args.arrival,
            horizon=args.horizon, seed=args.seed, video=args.video,
            abr=args.abr, scheme=args.scheme,
            video_duration=args.duration,
            wifi_only_fraction=args.wifi_only_fraction,
            shard_size=args.shard_size, kernel=args.kernel,
            fault_session=args.fault_session)
        recorder = None
        if args.record_dir is not None:
            recorder = RecorderConfig(
                artifact_dir=args.record_dir,
                head_every=args.record_head_every,
                miss_threshold=args.record_miss_threshold,
                stall_threshold=args.record_stall_threshold,
                bottom_k=args.record_bottom_k)
    except ValueError as exc:
        print(f"repro fleet: {exc}", file=sys.stderr)
        return 2

    bus = EventBus()
    dashboard = None
    if args.live:
        dashboard = FleetDashboard()
        dashboard.attach(bus)
    if not args.json and (dashboard is None or not dashboard.enabled):
        total = config.total_shards
        bus.subscribe(FleetShardCompleted, lambda e: print(
            f"[{e.time:8.2f}s] shard {e.shard + 1}/{total} "
            f"({e.sessions} sessions, {e.failures} failed) "
            f"in {e.elapsed:.2f}s", file=sys.stderr))
        bus.subscribe(FleetCheckpointSaved, lambda e: print(
            f"[{e.time:8.2f}s] checkpoint @ {e.shards_done} shards "
            f"-> {e.path}", file=sys.stderr))
        if recorder is not None:
            bus.subscribe(FleetSessionCaptured, lambda e: print(
                f"[{e.time:8.2f}s] captured session {e.session} "
                f"({e.reason}, score {e.score:.2f})", file=sys.stderr))
    try:
        result = run_fleet(
            config, jobs=args.jobs, checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every, resume=args.resume,
            stop_after=args.stop_after, retries=args.retries, bus=bus,
            recorder=recorder, ledger=args.ledger)
    except ValueError as exc:
        print(f"repro fleet: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"repro fleet: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(result.to_dict(), sort_keys=True))
    else:
        print(fleet_table(result), file=sys.stderr)
    if args.report is not None:
        result.export_report(args.report, triage_top=args.triage_top)
        print(f"fleet report written to {args.report}", file=sys.stderr)
    return 0


def _find_ledger_entry(entries, prefix: str):
    """The unique entry whose id starts with ``prefix`` (or None after
    printing the error; callers exit 2)."""
    matches = [e for e in entries if e.entry_id.startswith(prefix)]
    if not matches:
        print(f"repro history: no entry matching {prefix!r}",
              file=sys.stderr)
        return None
    if len(matches) > 1:
        ids = ", ".join(e.entry_id[:12] for e in matches[:5])
        print(f"repro history: {prefix!r} is ambiguous ({ids}...)",
              file=sys.stderr)
        return None
    return matches[0]


def cmd_history(args: argparse.Namespace) -> int:
    """Longitudinal views over a run ledger (see repro.obs.ledger).

    Actions: ``list`` entries, ``show``/``diff`` entries by id prefix,
    ``trend`` (machine-readable timeseries + EWMA tracks, or ``--html``
    the longitudinal report), ``gate`` (run the drift sentinel; exit 1
    on ERROR-severity drift).  Exit status: 0 clean, 1 gate failure,
    2 bad arguments or an unreadable ledger.
    """
    action = "gate" if args.gate_flag else args.action
    load = RunLedger(args.ledger).load()
    for warning in load.warnings:
        print(f"repro history: warning: {warning}", file=sys.stderr)
    entries = list(load.entries)
    if args.kind is not None:
        entries = [e for e in entries if e.kind == args.kind]
    if args.last is not None:
        entries = entries[-args.last:]

    if action == "list":
        if args.json:
            print(json.dumps([e.to_dict() for e in entries],
                             sort_keys=True))
        else:
            rows = [[str(i), e.kind, e.entry_id[:12], e.key[:12],
                     e.label or "-", str(len(e.metrics))]
                    for i, e in enumerate(entries)]
            print(format_table(
                ["#", "kind", "entry", "key", "label", "metrics"], rows,
                title=f"ledger {args.ledger} ({len(entries)} entries)"),
                file=sys.stderr)
        return 0

    if action == "show":
        if len(args.ids) != 1:
            print("repro history: show takes exactly one entry-id "
                  "prefix", file=sys.stderr)
            return 2
        entry = _find_ledger_entry(entries, args.ids[0])
        if entry is None:
            return 2
        print(json.dumps(entry.to_dict(), sort_keys=True))
        if not args.json:
            rows = [[name, f"{value:.6g}"]
                    for name, value in entry.metrics.items()]
            print(format_table(["metric", "value"], rows,
                               title=f"{entry.kind} {entry.entry_id[:12]}"),
                  file=sys.stderr)
        return 0

    if action == "diff":
        if len(args.ids) != 2:
            print("repro history: diff takes exactly two entry-id "
                  "prefixes", file=sys.stderr)
            return 2
        first = _find_ledger_entry(entries, args.ids[0])
        second = _find_ledger_entry(entries, args.ids[1])
        if first is None or second is None:
            return 2
        names = sorted(set(first.metrics) | set(second.metrics))
        deltas = []
        for name in names:
            a = first.metrics.get(name)
            b = second.metrics.get(name)
            delta = (b - a) if a is not None and b is not None else None
            relative = (delta / abs(a)
                        if delta is not None and a not in (None, 0.0)
                        else None)
            deltas.append({"metric": name, "a": a, "b": b,
                           "delta": delta, "relative": relative})
        environment = {
            key: [first.environment.get(key), second.environment.get(key)]
            for key in sorted(set(first.environment)
                              | set(second.environment))
            if first.environment.get(key) != second.environment.get(key)}
        document = {"a": first.to_dict(), "b": second.to_dict(),
                    "metrics": deltas,
                    "environment_changes": environment}
        if args.json:
            print(json.dumps(document, sort_keys=True))
        else:
            def show(value) -> str:
                return "-" if value is None else f"{value:.6g}"

            rows = [[d["metric"], show(d["a"]), show(d["b"]),
                     show(d["delta"]),
                     ("-" if d["relative"] is None
                      else f"{d['relative']:+.1%}")] for d in deltas]
            print(format_table(
                ["metric", first.entry_id[:12], second.entry_id[:12],
                 "delta", "rel"], rows,
                title=f"{first.kind} diff"), file=sys.stderr)
            for key, (mine, theirs) in environment.items():
                print(f"environment: {key}: {mine} -> {theirs}",
                      file=sys.stderr)
        return 0

    findings = detect_drift(entries)
    if action == "trend":
        document = trend_document(entries, findings)
        if args.json:
            print(json.dumps(document, sort_keys=True))
        if args.html is not None:
            bench_reports = []
            for path in args.bench:
                try:
                    bench_reports.append(BenchReport.load(path))
                except (OSError, ValueError, KeyError) as exc:
                    print(f"repro history: cannot load bench report "
                          f"{path}: {exc}", file=sys.stderr)
                    return 2
            write_report(args.html, history_report_html(
                entries, findings=findings, bench_reports=bench_reports,
                warnings=load.warnings))
            print(f"history report written to {args.html}",
                  file=sys.stderr)
        if not args.json:
            print(drift_table(findings), file=sys.stderr)
        return 0

    # action == "gate"
    if args.json:
        print(json.dumps(
            {"entries": len(entries), "gate_ok": gate_ok(findings),
             "findings": [f.to_dict() for f in findings]},
            sort_keys=True))
    else:
        print(drift_table(findings), file=sys.stderr)
    if not gate_ok(findings):
        print(f"repro history: DRIFT GATE FAILED "
              f"({sum(1 for f in findings if f.severity == 'error')} "
              f"error-severity finding(s))", file=sys.stderr)
        return 1
    print("repro history: drift gate passed", file=sys.stderr)
    return 0


def _resolve_manifest(record_dir: str, fleet_key: Optional[str],
                      prog: str):
    """Locate exactly one campaign manifest under ``record_dir``.

    Returns ``(recorder root, manifest dict)`` — artifact paths inside
    records are relative to the root, the manifest's grandparent
    directory — or ``(None, None)`` after printing the error (missing
    manifest, unmatched or ambiguous ``--fleet-key``, unreadable file;
    callers exit 2)."""
    from .obs.recorder import find_manifests, load_manifest

    manifests = find_manifests(record_dir)
    if not manifests:
        print(f"{prog}: no anomaly manifest under {record_dir}",
              file=sys.stderr)
        return None, None
    if fleet_key is not None:
        manifests = [m for m in manifests
                     if os.path.basename(os.path.dirname(m))
                     .startswith(fleet_key)]
        if not manifests:
            print(f"{prog}: no campaign matching key prefix "
                  f"{fleet_key!r}", file=sys.stderr)
            return None, None
    if len(manifests) > 1:
        keys = ", ".join(os.path.basename(os.path.dirname(m))
                         for m in manifests)
        print(f"{prog}: several campaigns under {record_dir} ({keys}); "
              f"pick one with --fleet-key", file=sys.stderr)
        return None, None
    manifest_path = manifests[0]
    try:
        manifest = load_manifest(manifest_path)
    except (OSError, ValueError) as exc:
        print(f"{prog}: {exc}", file=sys.stderr)
        return None, None
    return os.path.dirname(os.path.dirname(manifest_path)), manifest


def cmd_triage(args: argparse.Namespace) -> int:
    """Rank, replay, and render a campaign's flight-recorder captures.

    Exit status: 0 on a successful triage (even with zero captures),
    2 when the artifact directory has no usable manifest or the
    ``--fleet-key`` prefix is missing/ambiguous.
    """
    from .obs.recorder import (rank_anomalies, render_anomaly_reports,
                               replay_anomaly, triage_table)

    root, manifest = _resolve_manifest(args.record_dir, args.fleet_key,
                                       "repro triage")
    if manifest is None:
        return 2
    ranked = rank_anomalies(manifest.get("records", []), top=args.top)
    replays = {int(r["index"]): replay_anomaly(root, r) for r in ranked}
    if args.json:
        print(json.dumps(
            {"fleet_key": manifest.get("fleet_key", ""),
             "stats": manifest.get("stats", {}),
             "records": [dict(r, replay=replays[int(r["index"])])
                         for r in ranked]}, sort_keys=True))
    else:
        print(triage_table(ranked), file=sys.stderr)
        for record in ranked:
            replay = replays[int(record["index"])]
            if replay.get("replayed") and not replay.get(
                    "matches_recorded"):
                print(f"warning: session {record['index']} replayed to "
                      f"different verdicts than recorded", file=sys.stderr)
    if args.html is not None:
        out_dir = os.path.dirname(os.path.abspath(args.html))
        links = render_anomaly_reports(root, ranked, out_dir)
        write_report(args.html, triage_report_html(
            ranked, fleet_key=manifest.get("fleet_key", ""),
            links=links, replays=replays))
        print(f"triage report written to {args.html} "
              f"({len(links)} mini report(s))", file=sys.stderr)
    return 0


def cmd_why(args: argparse.Namespace) -> int:
    """Causal root-cause attribution: explain why anomalies happened.

    Four modes, all pure functions of their traces: attribute a live
    session, a ``--load``-ed export, a campaign's recorded captures
    (``--record-dir``), or diff two arms (``--diff A B``).  Machine
    verdicts go to stdout with ``--json``; human tables go to stderr.

    Exit status: 0 on successful attribution (even when there is
    nothing to explain), 2 on unloadable traces or manifest problems.
    """
    if args.diff is not None:
        path_a, path_b = args.diff
        try:
            trace_a = load_jsonl(path_a)
            trace_b = load_jsonl(path_b)
        except (OSError, ValueError) as exc:
            print(f"repro why: cannot load trace: {exc}",
                  file=sys.stderr)
            return 2
        diff = diff_traces(trace_a, trace_b)
        if args.json:
            print(json.dumps(diff.to_dict(), sort_keys=True))
        else:
            print(f"diffing {path_a} (A) vs {path_b} (B)",
                  file=sys.stderr)
            print(diff.render(top=args.top), file=sys.stderr)
        return 0

    if args.record_dir is not None:
        from .obs.recorder import rank_anomalies

        root, manifest = _resolve_manifest(
            args.record_dir, args.fleet_key, "repro why")
        if manifest is None:
            return 2
        ranked = rank_anomalies(manifest.get("records", []),
                                top=args.top)
        verdicts = [dict(record, why=attribute_anomaly(root, record))
                    for record in ranked]
        if args.json:
            print(json.dumps(
                {"fleet_key": manifest.get("fleet_key", ""),
                 "records": verdicts}, sort_keys=True))
        else:
            for record in verdicts:
                why = record["why"]
                if not why["attributed"]:
                    line = f"unattributable ({why['error']})"
                else:
                    summary = why["summary"]
                    line = (f"{summary['total']} verdict(s), top cause "
                            f"{summary['top_cause']} (layer "
                            f"{summary['top_layer']})")
                print(f"session {record['index']} "
                      f"[{record['reason']}]: {line}", file=sys.stderr)
            if not verdicts:
                print("no captured anomalies to attribute",
                      file=sys.stderr)
        return 0

    if args.load is not None:
        try:
            trace = load_jsonl(args.load)
        except (OSError, ValueError) as exc:
            print(f"repro why: cannot load {args.load}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"attributing {args.load} offline", file=sys.stderr)
    else:
        # The sampler rides along so the network rules (bandwidth-drop,
        # queue-buildup, estimator-drift) have per-path evidence.
        result = run_session(_session_config(
            args, record_trace=True, collect_metrics=True))
        trace = Trace(meta=result.trace_meta,
                      events=list(result.events))
    attributions = attributions_from_trace(trace)
    if args.json:
        print(json.dumps(
            {"attributions": [a.to_dict() for a in attributions],
             "summary": summarize_attributions(attributions)},
            sort_keys=True))
    else:
        print(render_attributions(attributions, top=args.top),
              file=sys.stderr)
    return 0


def cmd_locations(_args: argparse.Namespace) -> int:
    rows = [[loc.name, loc.scenario, loc.wifi_mbps, loc.wifi_rtt_ms,
             loc.lte_mbps, loc.lte_rtt_ms]
            for loc in field_study_locations()]
    print(format_table(
        ["location", "scenario", "wifi Mbps", "wifi RTT ms", "lte Mbps",
         "lte RTT ms"], rows,
        title="Field-study catalog (33 locations, scenarios 64%/15%/21%)"))
    return 0


def cmd_videos(_args: argparse.Namespace) -> int:
    rows = [[name] + list(ladder)
            for name, ladder in sorted(VIDEO_LADDERS.items())]
    print(format_table(
        ["video", "L1", "L2", "L3", "L4", "L5"], rows,
        title="Table 3: average encoding bitrates (Mbps)"))
    return 0


_COMMANDS = {
    "stream": cmd_stream,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "download": cmd_download,
    "trace": cmd_trace,
    "stats": cmd_stats,
    "spans": cmd_spans,
    "profile": cmd_profile,
    "check": cmd_check,
    "bench": cmd_bench,
    "report": cmd_report,
    "fleet": cmd_fleet,
    "history": cmd_history,
    "triage": cmd_triage,
    "why": cmd_why,
    "locations": cmd_locations,
    "videos": cmd_videos,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
