"""Command-line interface: run sessions and inspect them from a shell.

The paper's analysis tool is a standalone binary; this module is its
equivalent entry point, plus runners for the common experiments::

    python -m repro stream --abr festive --mpdash --wifi 3.8 --lte 3.0
    python -m repro compare --abr bba-c --wifi 2.2 --lte 1.2
    python -m repro download --size-mb 5 --deadline 10
    python -m repro locations
    python -m repro videos
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .abr import abr_names
from .analysis.report import session_report
from .core.deadlines import DEADLINE_MODES, RATE_BASED
from .experiments import (BASELINE, DURATION, FileDownloadConfig, RATE,
                          SessionConfig, run_file_download, run_schemes,
                          run_session)
from .experiments.tables import format_table, pct
from .workloads import VIDEO_LADDERS, field_study_locations, video_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MP-DASH reproduction: preference-aware multipath "
                    "video streaming")
    commands = parser.add_subparsers(dest="command", required=True)

    stream = commands.add_parser(
        "stream", help="run one streaming session and analyze it")
    _add_network_args(stream)
    stream.add_argument("--video", default="big_buck_bunny",
                        choices=video_names())
    stream.add_argument("--abr", default="festive", choices=abr_names())
    stream.add_argument("--mpdash", action="store_true",
                        help="enable the MP-DASH scheduler")
    stream.add_argument("--deadline-mode", default=RATE_BASED,
                        choices=list(DEADLINE_MODES))
    stream.add_argument("--alpha", type=float, default=1.0)
    stream.add_argument("--duration", type=float, default=300.0,
                        help="video length to stream, seconds")
    stream.add_argument("--visualize", action="store_true",
                        help="print the Figure-8 chunk strip and "
                             "throughput patterns")

    compare = commands.add_parser(
        "compare", help="baseline vs MP-DASH (duration & rate deadlines)")
    _add_network_args(compare)
    compare.add_argument("--video", default="big_buck_bunny",
                         choices=video_names())
    compare.add_argument("--abr", default="festive", choices=abr_names())
    compare.add_argument("--duration", type=float, default=300.0)

    download = commands.add_parser(
        "download", help="one deadline-bounded file download")
    _add_network_args(download)
    download.add_argument("--size-mb", type=float, default=5.0)
    download.add_argument("--deadline", type=float, default=10.0)
    download.add_argument("--alpha", type=float, default=1.0)
    download.add_argument("--no-mpdash", action="store_true")

    commands.add_parser("locations",
                        help="list the 33-location field-study catalog")
    commands.add_parser("videos", help="list the Table-3 video ladders")
    return parser


def _add_network_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--wifi", type=float, default=3.8,
                        help="WiFi bandwidth, Mbps")
    parser.add_argument("--lte", type=float, default=3.0,
                        help="LTE bandwidth, Mbps")
    parser.add_argument("--wifi-rtt", type=float, default=50.0,
                        help="WiFi RTT, ms")
    parser.add_argument("--lte-rtt", type=float, default=55.0,
                        help="LTE RTT, ms")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_stream(args: argparse.Namespace) -> int:
    config = SessionConfig(
        video=args.video, abr=args.abr, mpdash=args.mpdash,
        deadline_mode=args.deadline_mode, alpha=args.alpha,
        wifi_mbps=args.wifi, lte_mbps=args.lte,
        wifi_rtt_ms=args.wifi_rtt, lte_rtt_ms=args.lte_rtt,
        video_duration=args.duration)
    result = run_session(config)
    metrics = result.metrics
    print(format_table(
        ["metric", "value"],
        [["finished", result.finished],
         ["cellular MB", f"{metrics.cellular_bytes / 1e6:.2f}"],
         ["cellular share", pct(metrics.cellular_fraction)],
         ["radio energy J", f"{metrics.radio_energy:.1f}"],
         ["playback bitrate Mbps", f"{metrics.mean_bitrate_mbps:.2f}"],
         ["quality switches", metrics.quality_switches],
         ["stalls", metrics.stall_count],
         ["startup delay s", f"{metrics.startup_delay:.2f}"
          if metrics.startup_delay is not None else "-"]],
        title=f"{args.video} / {args.abr} "
              f"({'MP-DASH ' + args.deadline_mode if args.mpdash else 'vanilla MPTCP'})"))
    if args.visualize:
        print()
        print(session_report(result))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    base = SessionConfig(
        video=args.video, abr=args.abr, wifi_mbps=args.wifi,
        lte_mbps=args.lte, wifi_rtt_ms=args.wifi_rtt,
        lte_rtt_ms=args.lte_rtt, video_duration=args.duration)
    comparison = run_schemes(base)
    rows = []
    for scheme in (BASELINE, DURATION, RATE):
        metrics = comparison.results[scheme].metrics
        rows.append([
            scheme, f"{metrics.cellular_bytes / 1e6:.2f}",
            f"{metrics.radio_energy:.1f}",
            f"{metrics.mean_bitrate_mbps:.2f}", metrics.stall_count,
            pct(comparison.cellular_savings(scheme))
            if scheme != BASELINE else "-",
            pct(comparison.cellular_energy_savings(scheme))
            if scheme != BASELINE else "-"])
    print(format_table(
        ["scheme", "cell MB", "energy J", "bitrate", "stalls",
         "cell saved", "LTE-energy saved"],
        rows, title=f"{args.video} / {args.abr} @ "
                    f"W{args.wifi}/L{args.lte} Mbps"))
    return 0


def cmd_download(args: argparse.Namespace) -> int:
    result = run_file_download(FileDownloadConfig(
        size=args.size_mb * 1e6, deadline=args.deadline,
        mpdash=not args.no_mpdash, alpha=args.alpha,
        wifi_mbps=args.wifi, lte_mbps=args.lte,
        wifi_rtt_ms=args.wifi_rtt, lte_rtt_ms=args.lte_rtt))
    print(format_table(
        ["metric", "value"],
        [["finished at s", f"{result.duration:.2f}"],
         ["deadline met", not result.missed_deadline],
         ["cellular MB", f"{result.cellular_bytes / 1e6:.2f}"],
         ["cellular share", pct(result.cellular_fraction)],
         ["radio energy J", f"{result.radio_energy:.1f}"]],
        title=f"{args.size_mb:.0f}MB download, D={args.deadline:.0f}s "
              f"({'vanilla' if args.no_mpdash else 'MP-DASH'})"))
    return 0


def cmd_locations(_args: argparse.Namespace) -> int:
    rows = [[loc.name, loc.scenario, loc.wifi_mbps, loc.wifi_rtt_ms,
             loc.lte_mbps, loc.lte_rtt_ms]
            for loc in field_study_locations()]
    print(format_table(
        ["location", "scenario", "wifi Mbps", "wifi RTT ms", "lte Mbps",
         "lte RTT ms"], rows,
        title="Field-study catalog (33 locations, scenarios 64%/15%/21%)"))
    return 0


def cmd_videos(_args: argparse.Namespace) -> int:
    rows = [[name] + list(ladder)
            for name, ladder in sorted(VIDEO_LADDERS.items())]
    print(format_table(
        ["video", "L1", "L2", "L3", "L4", "L5"], rows,
        title="Table 3: average encoding bitrates (Mbps)"))
    return 0


_COMMANDS = {
    "stream": cmd_stream,
    "compare": cmd_compare,
    "download": cmd_download,
    "locations": cmd_locations,
    "videos": cmd_videos,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
