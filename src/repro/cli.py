"""Command-line interface: run sessions and inspect them from a shell.

The paper's analysis tool is a standalone binary; this module is its
equivalent entry point, plus runners for the common experiments::

    python -m repro stream --abr festive --mpdash --wifi 3.8 --lte 3.0
    python -m repro compare --abr bba-c --wifi 2.2 --lte 1.2
    python -m repro download --size-mb 5 --deadline 10
    python -m repro trace --out run.jsonl --mpdash
    python -m repro trace --load run.jsonl --diff other.jsonl
    python -m repro locations
    python -m repro videos
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict
from typing import List, Optional

from .abr import abr_names
from .analysis.metrics import SessionMetrics
from .analysis.report import session_report
from .core.deadlines import DEADLINE_MODES, RATE_BASED
from .experiments import (BASELINE, DURATION, FileDownloadConfig, RATE,
                          SessionConfig, run_file_download, run_schemes,
                          run_session)
from .experiments.tables import format_table, pct
from .obs import Trace, dump_jsonl, load_jsonl, metrics_from_trace
from .workloads import VIDEO_LADDERS, field_study_locations, video_names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MP-DASH reproduction: preference-aware multipath "
                    "video streaming")
    commands = parser.add_subparsers(dest="command", required=True)

    stream = commands.add_parser(
        "stream", help="run one streaming session and analyze it")
    _add_network_args(stream)
    stream.add_argument("--video", default="big_buck_bunny",
                        choices=video_names())
    stream.add_argument("--abr", default="festive", choices=abr_names())
    stream.add_argument("--mpdash", action="store_true",
                        help="enable the MP-DASH scheduler")
    stream.add_argument("--deadline-mode", default=RATE_BASED,
                        choices=list(DEADLINE_MODES))
    stream.add_argument("--alpha", type=float, default=1.0)
    stream.add_argument("--duration", type=float, default=300.0,
                        help="video length to stream, seconds")
    stream.add_argument("--visualize", action="store_true",
                        help="print the Figure-8 chunk strip and "
                             "throughput patterns")

    compare = commands.add_parser(
        "compare", help="baseline vs MP-DASH (duration & rate deadlines)")
    _add_network_args(compare)
    compare.add_argument("--video", default="big_buck_bunny",
                         choices=video_names())
    compare.add_argument("--abr", default="festive", choices=abr_names())
    compare.add_argument("--duration", type=float, default=300.0)

    download = commands.add_parser(
        "download", help="one deadline-bounded file download")
    _add_network_args(download)
    download.add_argument("--size-mb", type=float, default=5.0)
    download.add_argument("--deadline", type=float, default=10.0)
    download.add_argument("--alpha", type=float, default=1.0)
    download.add_argument("--no-mpdash", action="store_true")

    trace = commands.add_parser(
        "trace", help="capture, replay, and diff JSONL session traces")
    _add_network_args(trace)
    trace.add_argument("--video", default="big_buck_bunny",
                       choices=video_names())
    trace.add_argument("--abr", default="festive", choices=abr_names())
    trace.add_argument("--mpdash", action="store_true",
                       help="enable the MP-DASH scheduler")
    trace.add_argument("--deadline-mode", default=RATE_BASED,
                       choices=list(DEADLINE_MODES))
    trace.add_argument("--alpha", type=float, default=1.0)
    trace.add_argument("--duration", type=float, default=300.0,
                       help="video length to stream, seconds")
    trace.add_argument("--out", metavar="FILE",
                       help="export the captured trace as JSONL")
    trace.add_argument("--load", metavar="FILE",
                       help="analyze an existing trace offline instead of "
                            "running a session")
    trace.add_argument("--diff", metavar="FILE",
                       help="second trace to compare metrics against")
    trace.add_argument("--json", action="store_true",
                       help="machine-readable output instead of tables")

    commands.add_parser("locations",
                        help="list the 33-location field-study catalog")
    commands.add_parser("videos", help="list the Table-3 video ladders")
    return parser


def _add_network_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--wifi", type=float, default=3.8,
                        help="WiFi bandwidth, Mbps")
    parser.add_argument("--lte", type=float, default=3.0,
                        help="LTE bandwidth, Mbps")
    parser.add_argument("--wifi-rtt", type=float, default=50.0,
                        help="WiFi RTT, ms")
    parser.add_argument("--lte-rtt", type=float, default=55.0,
                        help="LTE RTT, ms")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_stream(args: argparse.Namespace) -> int:
    config = SessionConfig(
        video=args.video, abr=args.abr, mpdash=args.mpdash,
        deadline_mode=args.deadline_mode, alpha=args.alpha,
        wifi_mbps=args.wifi, lte_mbps=args.lte,
        wifi_rtt_ms=args.wifi_rtt, lte_rtt_ms=args.lte_rtt,
        video_duration=args.duration)
    result = run_session(config)
    metrics = result.metrics
    print(format_table(
        ["metric", "value"],
        [["finished", result.finished],
         ["cellular MB", f"{metrics.cellular_bytes / 1e6:.2f}"],
         ["cellular share", pct(metrics.cellular_fraction)],
         ["radio energy J", f"{metrics.radio_energy:.1f}"],
         ["playback bitrate Mbps", f"{metrics.mean_bitrate_mbps:.2f}"],
         ["quality switches", metrics.quality_switches],
         ["stalls", metrics.stall_count],
         ["startup delay s", f"{metrics.startup_delay:.2f}"
          if metrics.startup_delay is not None else "-"]],
        title=f"{args.video} / {args.abr} "
              f"({'MP-DASH ' + args.deadline_mode if args.mpdash else 'vanilla MPTCP'})"))
    if args.visualize:
        print()
        print(session_report(result))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    base = SessionConfig(
        video=args.video, abr=args.abr, wifi_mbps=args.wifi,
        lte_mbps=args.lte, wifi_rtt_ms=args.wifi_rtt,
        lte_rtt_ms=args.lte_rtt, video_duration=args.duration)
    comparison = run_schemes(base)
    rows = []
    for scheme in (BASELINE, DURATION, RATE):
        metrics = comparison.results[scheme].metrics
        rows.append([
            scheme, f"{metrics.cellular_bytes / 1e6:.2f}",
            f"{metrics.radio_energy:.1f}",
            f"{metrics.mean_bitrate_mbps:.2f}", metrics.stall_count,
            pct(comparison.cellular_savings(scheme))
            if scheme != BASELINE else "-",
            pct(comparison.cellular_energy_savings(scheme))
            if scheme != BASELINE else "-"])
    print(format_table(
        ["scheme", "cell MB", "energy J", "bitrate", "stalls",
         "cell saved", "LTE-energy saved"],
        rows, title=f"{args.video} / {args.abr} @ "
                    f"W{args.wifi}/L{args.lte} Mbps"))
    return 0


def cmd_download(args: argparse.Namespace) -> int:
    result = run_file_download(FileDownloadConfig(
        size=args.size_mb * 1e6, deadline=args.deadline,
        mpdash=not args.no_mpdash, alpha=args.alpha,
        wifi_mbps=args.wifi, lte_mbps=args.lte,
        wifi_rtt_ms=args.wifi_rtt, lte_rtt_ms=args.lte_rtt))
    print(format_table(
        ["metric", "value"],
        [["finished at s", f"{result.duration:.2f}"],
         ["deadline met", not result.missed_deadline],
         ["cellular MB", f"{result.cellular_bytes / 1e6:.2f}"],
         ["cellular share", pct(result.cellular_fraction)],
         ["radio energy J", f"{result.radio_energy:.1f}"]],
        title=f"{args.size_mb:.0f}MB download, D={args.deadline:.0f}s "
              f"({'vanilla' if args.no_mpdash else 'MP-DASH'})"))
    return 0


def _trace_summary(source: str, trace: Trace,
                   metrics: SessionMetrics) -> dict:
    """The structured description ``repro trace`` reports per trace."""
    return {
        "source": source,
        "meta": asdict(trace.meta),
        "events": {"total": len(trace.events),
                   "by_type": trace.count_by_type()},
        "metrics": asdict(metrics),
    }


def _print_trace_summary(summary: dict) -> None:
    metrics = summary["metrics"]
    meta = summary["meta"]
    rows = [["events", summary["events"]["total"]],
            ["session duration s", f"{meta['session_duration']:.2f}"],
            ["cellular MB",
             f"{metrics['bytes_per_path'].get('cellular', 0.0) / 1e6:.2f}"],
            ["energy J", f"{metrics['energy_total']:.1f}"],
            ["mean bitrate Mbps", f"{metrics['mean_bitrate'] * 8 / 1e6:.2f}"],
            ["quality switches", metrics["quality_switches"]],
            ["stalls", metrics["stall_count"]],
            ["chunks", metrics["chunk_count"]]]
    print(format_table(["metric", "value"], rows,
                       title=f"trace {summary['source']}"))


def cmd_trace(args: argparse.Namespace) -> int:
    """Capture a session's event stream, or analyze/diff exported ones.

    Three modes: run-and-capture (optionally ``--out`` to a JSONL file),
    ``--load`` to re-run the analyzer offline on an exported trace, and
    ``--diff`` to compare a second trace's metrics against the first.
    """
    if args.load is not None:
        try:
            trace = load_jsonl(args.load)
        except (OSError, ValueError) as exc:
            print(f"repro trace: cannot load {args.load}: {exc}")
            return 1
        if args.out is not None:
            dump_jsonl(args.out, trace.events, trace.meta)
        summary = _trace_summary(args.load, trace, metrics_from_trace(trace))
    else:
        config = SessionConfig(
            video=args.video, abr=args.abr, mpdash=args.mpdash,
            deadline_mode=args.deadline_mode, alpha=args.alpha,
            wifi_mbps=args.wifi, lte_mbps=args.lte,
            wifi_rtt_ms=args.wifi_rtt, lte_rtt_ms=args.lte_rtt,
            video_duration=args.duration, record_trace=True)
        result = run_session(config)
        if args.out is not None:
            result.export_trace(args.out)
        trace = Trace(meta=result.trace_meta, events=result.events)
        summary = _trace_summary("live", trace, result.metrics)

    if args.diff is not None:
        try:
            other = load_jsonl(args.diff)
        except (OSError, ValueError) as exc:
            print(f"repro trace: cannot load {args.diff}: {exc}")
            return 1
        other_summary = _trace_summary(args.diff, other,
                                       metrics_from_trace(other))
        scalars = ("energy_total", "stall_count", "total_stall_time",
                   "quality_switches", "mean_bitrate", "session_duration",
                   "chunk_count")
        delta = {key: other_summary["metrics"][key] - summary["metrics"][key]
                 for key in scalars}
        report = {"a": summary, "b": other_summary, "delta": delta}
        if args.json:
            print(json.dumps(report, sort_keys=True))
        else:
            _print_trace_summary(summary)
            _print_trace_summary(other_summary)
            print(format_table(
                ["metric", "a", "b", "delta"],
                [[key, summary["metrics"][key], other_summary["metrics"][key],
                  delta[key]] for key in scalars],
                title="trace diff (b - a)"))
        return 0

    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        _print_trace_summary(summary)
        if args.out is not None:
            print(f"trace written to {args.out}")
    return 0


def cmd_locations(_args: argparse.Namespace) -> int:
    rows = [[loc.name, loc.scenario, loc.wifi_mbps, loc.wifi_rtt_ms,
             loc.lte_mbps, loc.lte_rtt_ms]
            for loc in field_study_locations()]
    print(format_table(
        ["location", "scenario", "wifi Mbps", "wifi RTT ms", "lte Mbps",
         "lte RTT ms"], rows,
        title="Field-study catalog (33 locations, scenarios 64%/15%/21%)"))
    return 0


def cmd_videos(_args: argparse.Namespace) -> int:
    rows = [[name] + list(ladder)
            for name, ladder in sorted(VIDEO_LADDERS.items())]
    print(format_table(
        ["video", "L1", "L2", "L3", "L4", "L5"], rows,
        title="Table 3: average encoding bitrates (Mbps)"))
    return 0


_COMMANDS = {
    "stream": cmd_stream,
    "compare": cmd_compare,
    "download": cmd_download,
    "trace": cmd_trace,
    "locations": cmd_locations,
    "videos": cmd_videos,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
