"""Session-arrival workload models for fleet-scale campaigns.

MP-DASH's evaluation makes *population* claims — QoE, cellular-byte
savings, and deadline-miss rates across many users, locations, and
devices — so the fleet layer needs a workload that describes who streams
what, where, and when.  :class:`SessionArrivals` is that description: a
lazy, deterministic catalog of sessions, each drawn from

* an **arrival process** over a campaign horizon — ``poisson``
  (homogeneous: conditioned on N arrivals in [0, T), the arrival times
  are iid uniform, the order-statistics property of the Poisson
  process) or ``diurnal`` (inhomogeneous: inverse-CDF sampling over a
  piecewise-constant 24-hour intensity curve tiled across the horizon);
* the 33-location field-study catalog (§2.2, uniform — which reproduces
  the paper's 64/15/21 scenario split in expectation);
* a device mix over the energy model's handset catalog; and
* a WiFi-only fraction modelling users with no cellular plan or with
  cellular disabled.

Determinism is *per-session*, not sequential: ``draw(i)`` derives its
RNG from the seed pair ``(seed, i)`` (a numpy ``SeedSequence`` spawn
key), so any shard of a fleet can materialize any session without
replaying the draws before it, and two fleets with the same seed agree
draw-for-draw no matter how the index space is partitioned.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from .locations import Location, field_study_locations

ARRIVAL_POISSON = "poisson"
ARRIVAL_DIURNAL = "diurnal"
ARRIVAL_MODELS = (ARRIVAL_POISSON, ARRIVAL_DIURNAL)

#: Relative arrival intensity per local hour (0-23): a residential
#: viewing curve with a deep overnight trough, a daytime plateau, and an
#: evening prime-time peak.  Only ratios matter — the fleet fixes the
#: total session count, and the curve shapes *when* those sessions start.
DIURNAL_CURVE = (
    0.35, 0.25, 0.18, 0.14, 0.12, 0.15,
    0.25, 0.45, 0.65, 0.75, 0.80, 0.85,
    0.90, 0.85, 0.80, 0.85, 0.90, 1.00,
    1.20, 1.40, 1.50, 1.30, 0.95, 0.60,
)

#: Default handset mix over :data:`repro.energy.devices.DEVICES`.
DEFAULT_DEVICE_MIX: Dict[str, float] = {"galaxy_note": 0.7,
                                        "galaxy_s3": 0.3}


@dataclass(frozen=True)
class SessionDraw:
    """Everything random about one session, resolved to plain values.

    A draw is deliberately *not* a config: it carries names and seeds,
    never live objects, so it is tiny, picklable, and independent of the
    experiment layer.  ``trace_seed`` seeds the session's private
    bandwidth traces — sessions at the same location see different
    channel realizations around the same measured means.
    """

    index: int
    arrival: float
    location: str
    scenario: int
    device: str
    wifi_only: bool
    trace_seed: int

    @property
    def arrival_hour(self) -> float:
        """Local hour-of-day of the arrival (horizon hours wrap at 24)."""
        return (self.arrival / 3600.0) % 24.0


class SessionArrivals:
    """A deterministic, lazily-materialized session workload.

    ``draw(i)`` is a pure function of ``(seed, i)`` and the constructor
    arguments — O(1) per call, no sequential RNG state — which is what
    lets the fleet engine hand disjoint index ranges to workers and
    still produce a byte-identical population for any sharding.
    """

    def __init__(self, sessions: int, arrival: str = ARRIVAL_POISSON,
                 horizon: float = 86400.0, seed: int = 0,
                 wifi_only_fraction: float = 0.05,
                 device_mix: Optional[Mapping[str, float]] = None):
        if sessions < 0:
            raise ValueError(f"sessions cannot be negative: {sessions!r}")
        if arrival not in ARRIVAL_MODELS:
            raise ValueError(f"unknown arrival model {arrival!r}; "
                             f"known: {', '.join(ARRIVAL_MODELS)}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive: {horizon!r}")
        if not 0.0 <= wifi_only_fraction <= 1.0:
            raise ValueError(f"wifi_only_fraction must be in [0, 1]: "
                             f"{wifi_only_fraction!r}")
        mix = dict(device_mix if device_mix is not None
                   else DEFAULT_DEVICE_MIX)
        if not mix or any(w < 0 for w in mix.values()) \
                or sum(mix.values()) <= 0:
            raise ValueError(f"device_mix needs positive weights: {mix!r}")
        self.sessions = int(sessions)
        self.arrival = arrival
        self.horizon = float(horizon)
        self.seed = int(seed)
        self.wifi_only_fraction = float(wifi_only_fraction)
        self.device_mix = mix
        self._locations: List[Location] = field_study_locations()
        # Device CDF in sorted-name order (dict order must not matter).
        names = sorted(mix)
        total = sum(mix[name] for name in names)
        self._device_names = names
        self._device_cdf = list(np.cumsum(
            [mix[name] / total for name in names]))
        self._hour_cdf: Optional[List[float]] = None
        if arrival == ARRIVAL_DIURNAL:
            self._hour_cdf = self._build_hour_cdf()

    def _build_hour_cdf(self) -> List[float]:
        """Cumulative arrival mass per hour cell, tiled over the horizon."""
        cells = max(1, math.ceil(self.horizon / 3600.0))
        weights = []
        for cell in range(cells):
            width = min(3600.0, self.horizon - cell * 3600.0)
            weights.append(DIURNAL_CURVE[cell % 24] * width)
        total = sum(weights)
        return list(np.cumsum([w / total for w in weights]))

    def _arrival_time(self, rng: np.random.Generator) -> float:
        if self._hour_cdf is None:
            # Conditioned on the count, homogeneous-Poisson arrival
            # times are iid uniform over the horizon.
            return float(rng.uniform(0.0, self.horizon))
        cell = bisect_right(self._hour_cdf, float(rng.random()))
        cell = min(cell, len(self._hour_cdf) - 1)
        start = cell * 3600.0
        width = min(3600.0, self.horizon - start)
        return min(start + float(rng.random()) * width,
                   math.nextafter(self.horizon, 0.0))

    def _pick_device(self, u: float) -> str:
        cell = bisect_right(self._device_cdf, u)
        return self._device_names[min(cell, len(self._device_names) - 1)]

    def draw(self, index: int) -> SessionDraw:
        """Materialize session ``index`` — O(1), order-independent."""
        if not 0 <= index < self.sessions:
            raise IndexError(f"session index {index} outside "
                             f"[0, {self.sessions})")
        rng = np.random.default_rng((self.seed, index))
        arrival = self._arrival_time(rng)
        location = self._locations[int(rng.integers(len(self._locations)))]
        device = self._pick_device(float(rng.random()))
        wifi_only = bool(rng.random() < self.wifi_only_fraction)
        trace_seed = int(rng.integers(1, 2**31 - 1))
        return SessionDraw(index=index, arrival=arrival,
                           location=location.name,
                           scenario=location.scenario, device=device,
                           wifi_only=wifi_only, trace_seed=trace_seed)

    def draws(self, start: int = 0,
              stop: Optional[int] = None) -> Iterator[SessionDraw]:
        """Lazily yield draws for the index range ``[start, stop)``."""
        stop = self.sessions if stop is None else min(stop, self.sessions)
        for index in range(start, stop):
            yield self.draw(index)
