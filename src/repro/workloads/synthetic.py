"""Bandwidth profiles of the trace-driven evaluation (Table 1 / §7.2.2).

Five profiles drive Table 2: two synthetic (Gaussian around WiFi 3.8 /
cellular 3.0 Mbps with σ = 10% and 30% of the mean) and three recorded at
public locations — Fast Food B, Coffeehouse D, and an office.  We cannot
replay the authors' raw captures, so the real-world profiles are
synthesized as mean-reverting random walks around the means Table 1
reports, with per-location variability chosen to match the qualitative
description (open WiFi "tends to be fluctuating", Figure 5).

Each profile also fixes the file size and the deadline sweep of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..net.trace import BandwidthTrace
from ..net.units import mbps, megabytes


@dataclass(frozen=True)
class BandwidthProfile:
    """One Table-1 row: paired WiFi/cellular traces plus the workload."""

    name: str
    wifi: BandwidthTrace
    cellular: BandwidthTrace
    file_size: int
    #: Download deadlines (seconds) evaluated in Table 2.
    deadlines: Tuple[float, ...]
    wifi_mean_mbps: float
    cellular_mean_mbps: float

    def slot_series(self, slot: float, horizon: float
                    ) -> Tuple[List[float], List[float]]:
        """Per-slot (wifi, cellular) bandwidth samples for the trace sim."""
        return (self.wifi.samples(slot, horizon),
                self.cellular.samples(slot, horizon))


#: Trace horizon generated for every profile (seconds); long enough for the
#: largest deadline plus post-deadline spill.
_HORIZON = 120.0
_SAMPLE_INTERVAL = 0.25


def synthetic_profile(sigma_fraction: float, seed: int = 1) -> BandwidthProfile:
    """SYNTH row: WiFi 3.8 Mbps, cellular 3.0 Mbps, 5 MB file."""
    if sigma_fraction <= 0:
        raise ValueError(f"sigma must be positive: {sigma_fraction!r}")
    label = f"synthetic-{int(round(sigma_fraction * 100))}pct"
    wifi = BandwidthTrace.gaussian(mbps(3.8), sigma_fraction, _HORIZON,
                                   _SAMPLE_INTERVAL, seed=seed)
    cellular = BandwidthTrace.gaussian(mbps(3.0), sigma_fraction, _HORIZON,
                                       _SAMPLE_INTERVAL, seed=seed + 1000)
    return BandwidthProfile(label, wifi, cellular, megabytes(5),
                            deadlines=(8.0, 9.0, 10.0),
                            wifi_mean_mbps=3.8, cellular_mean_mbps=3.0)


def fast_food_profile(seed: int = 11) -> BandwidthProfile:
    """Fast Food B: WiFi 5.2 / cellular 8.1 Mbps, 20 MB file."""
    wifi = BandwidthTrace.random_walk(mbps(5.2), 0.28, _HORIZON,
                                      _SAMPLE_INTERVAL, seed=seed)
    cellular = BandwidthTrace.random_walk(mbps(8.1), 0.15, _HORIZON,
                                          _SAMPLE_INTERVAL, seed=seed + 1)
    return BandwidthProfile("fast_food_b", wifi, cellular, megabytes(20),
                            deadlines=(15.0, 20.0, 25.0, 30.0),
                            wifi_mean_mbps=5.2, cellular_mean_mbps=8.1)


def coffeehouse_profile(seed: int = 21) -> BandwidthProfile:
    """Coffeehouse D: WiFi 1.4 / cellular 7.6 Mbps, 5 MB file."""
    wifi = BandwidthTrace.random_walk(mbps(1.4), 0.32, _HORIZON,
                                      _SAMPLE_INTERVAL, seed=seed)
    cellular = BandwidthTrace.random_walk(mbps(7.6), 0.15, _HORIZON,
                                          _SAMPLE_INTERVAL, seed=seed + 1)
    return BandwidthProfile("coffeehouse_d", wifi, cellular, megabytes(5),
                            deadlines=(5.0, 10.0, 15.0, 20.0),
                            wifi_mean_mbps=1.4, cellular_mean_mbps=7.6)


def office_profile(seed: int = 31) -> BandwidthProfile:
    """Office: WiFi 28.4 / cellular 19.1 Mbps, 50 MB file."""
    wifi = BandwidthTrace.random_walk(mbps(28.4), 0.20, _HORIZON,
                                      _SAMPLE_INTERVAL, seed=seed)
    cellular = BandwidthTrace.random_walk(mbps(19.1), 0.15, _HORIZON,
                                          _SAMPLE_INTERVAL, seed=seed + 1)
    return BandwidthProfile("office", wifi, cellular, megabytes(50),
                            deadlines=(9.0, 12.0, 15.0, 18.0),
                            wifi_mean_mbps=28.4, cellular_mean_mbps=19.1)


def table1_profiles() -> Dict[str, BandwidthProfile]:
    """All five Table-1 rows, keyed by profile name."""
    profiles = [
        synthetic_profile(0.10, seed=1),
        synthetic_profile(0.30, seed=2),
        fast_food_profile(),
        coffeehouse_profile(),
        office_profile(),
    ]
    return {p.name: p for p in profiles}
