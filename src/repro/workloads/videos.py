"""The paper's video dataset (Table 3).

Four DASH videos from the public dataset of Lederer et al. [26], each 10
minutes long with five quality levels; average encoding bitrates are
reproduced verbatim from Table 3.  Chunk durations default to 4 seconds
(the paper's main configuration; 6 and 10 s "obtain similar results").
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..dash.media import VideoAsset

#: Average encoding bitrates in Mbps, lowest level first (Table 3).
VIDEO_LADDERS: Dict[str, Tuple[float, ...]] = {
    "big_buck_bunny": (0.58, 1.01, 1.47, 2.41, 3.94),
    "red_bull_playstreets": (0.50, 0.89, 1.50, 2.47, 3.99),
    "tears_of_steel": (0.50, 0.81, 1.51, 2.42, 4.01),
    "tears_of_steel_hd": (1.51, 2.42, 4.01, 6.03, 10.0),
}

#: Full playback length used throughout the evaluation (§7.3).
DEFAULT_DURATION = 600.0
DEFAULT_CHUNK_DURATION = 4.0


def video_names() -> List[str]:
    return sorted(VIDEO_LADDERS)


def video_asset(name: str, chunk_duration: float = DEFAULT_CHUNK_DURATION,
                duration: float = DEFAULT_DURATION, seed: int = None,
                vbr_sigma: float = 0.12) -> VideoAsset:
    """Build one of the Table-3 videos as a :class:`VideoAsset`.

    The per-chunk VBR size pattern is synthesized deterministically from
    the video's name (override with ``seed``), so every session streaming
    "Big Buck Bunny" sees identical chunk sizes.
    """
    try:
        ladder = VIDEO_LADDERS[name]
    except KeyError:
        raise KeyError(f"unknown video {name!r} "
                       f"(known: {video_names()})") from None
    if seed is None:
        # hash() is salted per process; derive a stable seed from the name.
        seed = sum(ord(c) * (i + 1) for i, c in enumerate(name)) % (2 ** 31)
    return VideoAsset.generate(name, chunk_duration, duration,
                               list(ladder), seed=seed, vbr_sigma=vbr_sigma)
