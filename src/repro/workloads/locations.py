"""The 33-location field-study catalog (§2.2, §7.3.3, Table 5).

The paper measures open WiFi and commercial LTE at 33 public places in
three U.S. states and groups them into three scenarios relative to the top
1080p encoding bitrate (3.94 Mbps):

1. WiFi alone can **never** sustain the top bitrate — 64% of locations,
2. WiFi **sometimes** can, but not stably — 15%,
3. WiFi can **almost always** sustain it — 21%.

We cannot replay the authors' captures, so the catalog below synthesizes a
deterministic stand-in: the seven locations Table 5 names keep their exact
measured mean bandwidths and RTTs, and the remaining 26 are generated to
complete the 21/5/7 scenario split.  Scenario-1 locations get means below
the top bitrate, scenario-2 locations hover above it with heavy
fluctuation and dropout windows, scenario-3 locations sit comfortably
above.  Every trace is seeded by the location's index, so the whole field
study is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..net.link import Path, cellular_path, wifi_path
from ..net.trace import BandwidthTrace
from ..net.units import mbps

#: Highest non-HD encoding bitrate (Big Buck Bunny level 5), Mbps.
TOP_BITRATE_MBPS = 3.94

SCENARIO_NEVER = 1
SCENARIO_SOMETIMES = 2
SCENARIO_ALWAYS = 3

#: Scenario population: 64% / 15% / 21% of 33 locations.
SCENARIO_COUNTS = {SCENARIO_NEVER: 21, SCENARIO_SOMETIMES: 5,
                   SCENARIO_ALWAYS: 7}


@dataclass(frozen=True)
class Location:
    """One field-study site."""

    name: str
    scenario: int
    wifi_mbps: float
    wifi_rtt_ms: float
    lte_mbps: float
    lte_rtt_ms: float
    #: WiFi fluctuation (std-dev as a fraction of the mean).
    wifi_sigma: float
    #: Dropout windows (start, end) overlaid on the WiFi trace.
    dropouts: tuple
    seed: int

    def wifi_trace(self, duration: float = 700.0) -> BandwidthTrace:
        trace = BandwidthTrace.random_walk(
            mbps(self.wifi_mbps), self.wifi_sigma, duration,
            interval=0.5, seed=self.seed)
        if self.dropouts:
            trace = BandwidthTrace.with_dropouts(
                trace, list(self.dropouts),
                floor_bytes_per_s=mbps(0.1 * self.wifi_mbps))
        return trace

    def lte_trace(self, duration: float = 700.0) -> BandwidthTrace:
        return BandwidthTrace.random_walk(
            mbps(self.lte_mbps), 0.15, duration,
            interval=0.5, seed=self.seed + 50_000)

    def paths(self, duration: float = 700.0) -> List[Path]:
        """WiFi + LTE paths for a streaming session at this location."""
        return [
            wifi_path(trace=self.wifi_trace(duration),
                      rtt_ms=self.wifi_rtt_ms),
            cellular_path(trace=self.lte_trace(duration),
                          rtt_ms=self.lte_rtt_ms),
        ]


#: The seven Table-5 locations with their measured means (BW Mbps, RTT ms).
TABLE5_LOCATIONS = [
    Location("hotel_hi", SCENARIO_NEVER, 2.92, 14.1, 11.0, 51.9,
             wifi_sigma=0.25, dropouts=(), seed=101),
    Location("hotel_ha", SCENARIO_NEVER, 2.96, 40.8, 14.0, 68.6,
             wifi_sigma=0.25, dropouts=(), seed=102),
    Location("food_market", SCENARIO_NEVER, 3.58, 75.4, 22.9, 53.4,
             wifi_sigma=0.10, dropouts=(), seed=103),
    Location("airport", SCENARIO_SOMETIMES, 5.97, 32.2, 12.1, 67.3,
             wifi_sigma=0.45, dropouts=((110.0, 130.0), (340.0, 365.0)),
             seed=104),
    Location("coffeehouse", SCENARIO_SOMETIMES, 6.04, 28.9, 18.1, 69.0,
             wifi_sigma=0.45, dropouts=((200.0, 218.0), (470.0, 490.0)),
             seed=105),
    Location("library", SCENARIO_ALWAYS, 17.8, 23.3, 5.18, 64.1,
             wifi_sigma=0.20, dropouts=(), seed=106),
    Location("electronics_store", SCENARIO_ALWAYS, 28.4, 10.8, 18.5, 59.4,
             wifi_sigma=0.15, dropouts=(), seed=107),
]

_GENERATED_KINDS = [
    "restaurant", "shopping_mall", "retailer", "grocery", "parking_lot",
    "food_court", "bookstore", "pharmacy", "gas_station", "bakery",
    "diner", "museum", "gym", "bus_station", "hardware_store", "cinema",
    "bar", "pizzeria", "tea_house", "office_building", "supermarket",
    "convenience_store", "department_store", "hotel_lobby", "university",
    "stadium",
]


def _generate_remaining() -> List[Location]:
    """Deterministically fill the catalog to the 21/5/7 scenario split."""
    named_counts = {s: sum(1 for loc in TABLE5_LOCATIONS
                           if loc.scenario == s)
                    for s in SCENARIO_COUNTS}
    needed = {s: SCENARIO_COUNTS[s] - named_counts[s]
              for s in SCENARIO_COUNTS}
    rng = np.random.default_rng(2016)
    generated: List[Location] = []
    kind_index = 0
    for scenario in (SCENARIO_NEVER, SCENARIO_SOMETIMES, SCENARIO_ALWAYS):
        for _ in range(needed[scenario]):
            kind = _GENERATED_KINDS[kind_index]
            kind_index += 1
            if scenario == SCENARIO_NEVER:
                # Comfortably below the 3.94 Mbps top bitrate even with
                # fluctuation: "never able to support the highest bitrate".
                wifi = float(rng.uniform(0.8, 3.2))
                sigma = float(rng.uniform(0.10, 0.20))
                dropouts = ()
            elif scenario == SCENARIO_SOMETIMES:
                wifi = float(rng.uniform(4.3, 7.0))
                sigma = float(rng.uniform(0.4, 0.55))
                start1 = float(rng.uniform(80, 250))
                start2 = float(rng.uniform(300, 520))
                dropouts = ((start1, start1 + float(rng.uniform(10, 30))),
                            (start2, start2 + float(rng.uniform(10, 30))))
            else:
                wifi = float(rng.uniform(9.0, 30.0))
                sigma = float(rng.uniform(0.1, 0.2))
                dropouts = ()
            lte = float(rng.uniform(5.0, 24.0))
            generated.append(Location(
                name=kind, scenario=scenario,
                wifi_mbps=round(wifi, 2),
                wifi_rtt_ms=round(float(rng.uniform(8, 80)), 1),
                lte_mbps=round(lte, 2),
                lte_rtt_ms=round(float(rng.uniform(45, 75)), 1),
                wifi_sigma=round(sigma, 3), dropouts=dropouts,
                seed=200 + kind_index))
    return generated


def field_study_locations() -> List[Location]:
    """The full 33-location catalog (7 named from Table 5 + 26 generated)."""
    catalog = list(TABLE5_LOCATIONS) + _generate_remaining()
    counts = {s: sum(1 for loc in catalog if loc.scenario == s)
              for s in SCENARIO_COUNTS}
    assert counts == SCENARIO_COUNTS, counts
    assert len(catalog) == 33
    return catalog


def location_by_name(name: str) -> Location:
    for location in field_study_locations():
        if location.name == name:
            return location
    raise KeyError(f"unknown location {name!r}")


def scenario_of(location: Location) -> int:
    return location.scenario
