"""The mobility scenario (§7.3.4).

The paper walks a fixed route around a WiFi AP while streaming: WiFi
throughput swings between ~5 Mbps (next to the AP) and near-zero (far side
of the route) while LTE stays around 5 Mbps.  The walk is modeled as a
raised-cosine bandwidth profile with a fixed loop period plus measurement
jitter; LTE is a mildly fluctuating random walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..net.link import Path, cellular_path, wifi_path
from ..net.trace import BandwidthTrace
from ..net.units import mbps


@dataclass(frozen=True)
class MobilityScenario:
    """Parameters of one walking loop around the AP."""

    peak_wifi_mbps: float = 5.0
    floor_wifi_mbps: float = 1.0
    lte_mbps: float = 5.0
    #: Seconds per full loop (away from the AP and back).
    loop_period: float = 60.0
    wifi_rtt_ms: float = 25.0
    lte_rtt_ms: float = 60.0
    seed: int = 77

    def wifi_trace(self, duration: float) -> BandwidthTrace:
        return BandwidthTrace.mobility_walk(
            mbps(self.peak_wifi_mbps), mbps(self.floor_wifi_mbps),
            period=self.loop_period, duration=duration, seed=self.seed)

    def lte_trace(self, duration: float) -> BandwidthTrace:
        return BandwidthTrace.random_walk(
            mbps(self.lte_mbps), 0.12, duration, interval=0.5,
            seed=self.seed + 1)

    def paths(self, duration: float = 700.0) -> List[Path]:
        return [
            wifi_path(trace=self.wifi_trace(duration),
                      rtt_ms=self.wifi_rtt_ms),
            cellular_path(trace=self.lte_trace(duration),
                          rtt_ms=self.lte_rtt_ms),
        ]

    def wifi_only_paths(self, duration: float = 700.0) -> List[Path]:
        """Single-path WiFi configuration (Figure 11's bottom subplot)."""
        return [wifi_path(trace=self.wifi_trace(duration),
                          rtt_ms=self.wifi_rtt_ms)]
