"""Workloads: videos, bandwidth profiles, locations, mobility, arrivals."""

from .arrivals import (ARRIVAL_DIURNAL, ARRIVAL_MODELS, ARRIVAL_POISSON,
                       DEFAULT_DEVICE_MIX, DIURNAL_CURVE, SessionArrivals,
                       SessionDraw)
from .locations import (Location, SCENARIO_ALWAYS, SCENARIO_COUNTS,
                        SCENARIO_NEVER, SCENARIO_SOMETIMES,
                        TABLE5_LOCATIONS, TOP_BITRATE_MBPS,
                        field_study_locations, location_by_name)
from .mobility import MobilityScenario
from .synthetic import (BandwidthProfile, coffeehouse_profile,
                        fast_food_profile, office_profile, synthetic_profile,
                        table1_profiles)
from .videos import (DEFAULT_CHUNK_DURATION, DEFAULT_DURATION, VIDEO_LADDERS,
                     video_asset, video_names)

__all__ = [
    "ARRIVAL_DIURNAL", "ARRIVAL_MODELS", "ARRIVAL_POISSON",
    "BandwidthProfile", "DEFAULT_CHUNK_DURATION", "DEFAULT_DEVICE_MIX",
    "DEFAULT_DURATION", "DIURNAL_CURVE",
    "Location", "MobilityScenario", "SCENARIO_ALWAYS", "SCENARIO_COUNTS",
    "SCENARIO_NEVER", "SCENARIO_SOMETIMES", "SessionArrivals",
    "SessionDraw", "TABLE5_LOCATIONS",
    "TOP_BITRATE_MBPS", "VIDEO_LADDERS", "coffeehouse_profile",
    "fast_food_profile", "field_study_locations", "location_by_name",
    "office_profile", "synthetic_profile", "table1_profiles", "video_asset",
    "video_names",
]
