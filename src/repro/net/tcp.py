"""Fluid-flow model of a single TCP subflow's sending rate.

The full packet-level behaviour of TCP is not needed to reproduce MP-DASH:
what matters to the paper's results is the *shape* of per-path throughput
over time —

* slow-start ramp at connection start and after idle periods (DASH traffic
  is on/off, so every chunk download after a buffer-full gap restarts from
  a reduced window; this is why the throttling baseline of Table 4 "dribbles"
  and why MP-DASH's burst-then-idle pattern is radio-energy friendly),
* congestion-avoidance tracking of the available bandwidth, and
* immediate rate collapse when the trace drops (the driver of cellular
  re-enablement in Algorithm 1).

We therefore model each subflow with a congestion window evolving in
continuous time: exponential growth below the bandwidth-delay product
(slow start), additive growth above it up to a small queue allowance
(congestion avoidance), and window restart after an idle period longer than
the retransmission timeout, per RFC 2861's congestion-window validation.
"""

from __future__ import annotations

import math

from .units import PACKET_SIZE


#: Initial congestion window, bytes (10 segments, RFC 6928).
INITIAL_CWND = 10 * PACKET_SIZE

#: How much standing queue (as a fraction of BDP) the window may build
#: before the model stops growing it.  Small, because the paper's testbed is
#: explicitly configured to avoid bufferbloat.
QUEUE_ALLOWANCE = 0.25

#: Minimum retransmission timeout; idle longer than max(RTO, 2*RTT) causes a
#: window restart.
MIN_RTO = 0.2

_LN2 = math.log(2.0)


def integrate_window(cwnd: float, ssthresh: float, rtt: float, bw: float,
                     dt_limit: float = math.inf,
                     bytes_limit: float = math.inf) -> tuple:
    """Integrate the fluid window in closed form under constant bandwidth.

    Starting from ``(cwnd, ssthresh)``, run the same dynamics as
    :meth:`TcpState.advance` in their continuous (dt → 0) limit until either
    ``dt_limit`` seconds elapse or ``bytes_limit`` bytes have been delivered,
    whichever comes first.  Returns ``(bytes, elapsed, cwnd, ssthresh)``.

    The trajectory decomposes into at most four phases, each with an exact
    bytes-delivered integral and an exact inverse:

    1. *Slow start* below ``min(ssthresh, bdp)``: the window doubles once
       per RTT, so ``F(t) = c0 * (2**(t/rtt) - 1) / ln 2``.
    2. *Congestion avoidance* below the BDP: linear window growth of one
       segment per RTT, ``F(t) = (c0*t + PACKET_SIZE*t**2/(2*rtt)) / rtt``.
    3. *Queue-filling* between the BDP and the ceiling: the delivery rate is
       pinned at ``bw`` while the window keeps growing linearly.
    4. *Pinned* at the ceiling: ``F(t) = bw * t`` forever.

    A window above the ceiling (the trace dropped) collapses immediately:
    the tick kernel halves it toward the ceiling over a few ticks, but the
    delivered bytes are identical either way because the rate is already
    clipped to ``bw``, so the continuous limit is an instant drop.

    ``elapsed`` is ``math.inf`` when ``bytes_limit`` can never be reached
    (zero bandwidth).  The function is pure; callers apply idle-restart
    before integrating (see :meth:`TcpState.window_after_restart`).
    """
    bdp = bw * rtt
    ceiling = bdp * (1.0 + QUEUE_ALLOWANCE)
    cap = max(ceiling, INITIAL_CWND)
    c = cwnd
    if c > cap:
        c = cap
        ssthresh = max(c, INITIAL_CWND)
    delivered = 0.0
    elapsed = 0.0

    # Phase 1: slow start (rate = c/rtt, window doubles per RTT).
    target = min(ssthresh, bdp)
    if elapsed < dt_limit and delivered < bytes_limit and c < target:
        tau = rtt * math.log2(target / c)
        tau = min(tau, dt_limit - elapsed)
        budget = bytes_limit - delivered
        tau_bytes = rtt * math.log2(1.0 + budget * _LN2 / c)
        tau = min(tau, tau_bytes)
        delivered += c * (2.0 ** (tau / rtt) - 1.0) / _LN2
        c = min(c * 2.0 ** (tau / rtt), target)
        elapsed += tau

    # Phase 2: congestion avoidance below the BDP (rate = c/rtt, linear
    # growth of one segment per RTT).
    if elapsed < dt_limit and delivered < bytes_limit and c < bdp:
        tau = (bdp - c) * rtt / PACKET_SIZE
        tau = min(tau, dt_limit - elapsed)
        budget = bytes_limit - delivered
        half_a = PACKET_SIZE / (2.0 * rtt)
        tau_bytes = ((math.sqrt(c * c + 4.0 * half_a * budget * rtt) - c)
                     / (2.0 * half_a))
        tau = min(tau, tau_bytes)
        delivered += (c * tau + half_a * tau * tau) / rtt
        c = min(c + PACKET_SIZE * tau / rtt, bdp)
        elapsed += tau

    # Phase 3: between the BDP and the ceiling the rate is pinned at bw but
    # the window still grows (the standing-queue allowance filling up).
    if elapsed < dt_limit and delivered < bytes_limit and c < ceiling:
        tau = (ceiling - c) * rtt / PACKET_SIZE
        tau = min(tau, dt_limit - elapsed)
        if bw > 0:
            tau = min(tau, (bytes_limit - delivered) / bw)
        delivered += bw * tau
        c = min(c + PACKET_SIZE * tau / rtt, ceiling)
        elapsed += tau

    # Phase 4: pinned at the ceiling; rate = bw, no further growth.
    if elapsed < dt_limit and delivered < bytes_limit:
        if math.isfinite(dt_limit):
            tau = dt_limit - elapsed
            if bw > 0:
                tau = min(tau, (bytes_limit - delivered) / bw)
            delivered += bw * tau
            elapsed += tau
        elif bw > 0:
            tau = (bytes_limit - delivered) / bw
            delivered += bw * tau
            elapsed += tau
        else:
            elapsed = math.inf

    return delivered, elapsed, c, ssthresh


class TcpState:
    """Congestion state of one subflow, advanced in fluid time steps."""

    def __init__(self, rtt: float):
        if rtt <= 0:
            raise ValueError(f"rtt must be positive: {rtt!r}")
        self.rtt = rtt
        self.cwnd = float(INITIAL_CWND)
        self.ssthresh = float("inf")
        self.last_send_time: float = None  # type: ignore[assignment]
        #: Observability hook: called with ``now`` whenever the idle-restart
        #: rule actually collapses the window (the subflow layer publishes a
        #: ``CwndRestarted`` event through it).
        self.on_idle_restart = None

    # ------------------------------------------------------------------
    def rate(self, available_bw: float) -> float:
        """Current achievable sending rate in bytes/second.

        The window-limited rate is ``cwnd / rtt``; the path then clips it to
        the available bandwidth of the link at this instant.
        """
        return min(self.cwnd / self.rtt, available_bw)

    def advance(self, now: float, dt: float, available_bw: float,
                sending: bool) -> float:
        """Advance the window by ``dt`` seconds; return bytes deliverable.

        ``sending`` is True when the application has data queued for this
        subflow.  When idle, the window decays via the restart rule instead
        of growing.
        """
        if not sending:
            return 0.0
        self._maybe_idle_restart(now)
        self.last_send_time = now + dt

        bdp = available_bw * self.rtt
        ceiling = bdp * (1.0 + QUEUE_ALLOWANCE)
        if self.cwnd < min(self.ssthresh, bdp):
            # Slow start: the window doubles once per RTT.
            self.cwnd = min(self.cwnd * (2.0 ** (dt / self.rtt)),
                            max(ceiling, INITIAL_CWND))
        elif self.cwnd < ceiling:
            # Congestion avoidance: one segment per RTT.
            self.cwnd = min(self.cwnd + PACKET_SIZE * (dt / self.rtt),
                            max(ceiling, INITIAL_CWND))
        else:
            # The trace dropped (or we overshot): fast-recovery style halving
            # toward the new ceiling, and remember it as ssthresh.
            self.cwnd = max(ceiling, INITIAL_CWND, self.cwnd / 2.0)
            self.ssthresh = max(self.cwnd, INITIAL_CWND)
        return self.rate(available_bw) * dt

    # ------------------------------------------------------------------
    # Analytic (event-driven kernel) interface
    # ------------------------------------------------------------------
    def window_after_restart(self, now: float) -> tuple:
        """Pure preview of ``(cwnd, ssthresh)`` if sending resumed at ``now``.

        Applies the RFC 2861 idle-restart rule without mutating state or
        firing the observability hook — the fast kernel uses it to predict
        delivery over a span before committing it.
        """
        cwnd, ssthresh = self.cwnd, self.ssthresh
        if self.last_send_time is not None:
            idle = now - self.last_send_time
            rto = max(MIN_RTO, 2.0 * self.rtt)
            if idle > rto:
                halvings = min(int(idle / rto), 64)
                ssthresh = max(cwnd * 0.75, INITIAL_CWND)
                cwnd = max(cwnd / (2.0 ** halvings), INITIAL_CWND)
        return cwnd, ssthresh

    def pinned_rate(self, now: float,
                    available_bw: float) -> "Optional[float]":
        """``available_bw`` when the window is provably pinned, else None.

        Pinned means the send clock is warm (no idle-restart pending) and
        the window sits exactly at the phase-4 ceiling, so continuous
        sending proceeds at rate ``available_bw`` with no state evolution.
        Steady-state streaming spends nearly all its time here; callers use
        it to skip the full four-phase integral.  A window *above* the
        ceiling does not qualify: the first real advance must collapse it
        (and record ssthresh), which this fast path would skip.
        """
        last = self.last_send_time
        if last is None or now - last > max(MIN_RTO, 2.0 * self.rtt):
            return None
        ceiling = available_bw * self.rtt * (1.0 + QUEUE_ALLOWANCE)
        if self.cwnd != max(ceiling, INITIAL_CWND):
            return None
        return available_bw

    def potential_bytes(self, now: float, dt: float, available_bw: float) -> float:
        """Bytes this subflow could deliver over ``[now, now + dt]``.

        Pure closed-form integral under constant ``available_bw``, assuming
        continuous sending from the (idle-restarted) current window.
        """
        rate = self.pinned_rate(now, available_bw)
        if rate is not None:
            return rate * dt
        cwnd, ssthresh = self.window_after_restart(now)
        delivered, _, _, _ = integrate_window(cwnd, ssthresh, self.rtt,
                                              available_bw, dt_limit=dt)
        return delivered

    def time_to_deliver(self, now: float, target_bytes: float,
                        available_bw: float) -> float:
        """Seconds of continuous sending needed to deliver ``target_bytes``.

        Pure; ``math.inf`` when the target is unreachable (zero bandwidth).
        """
        rate = self.pinned_rate(now, available_bw)
        if rate is not None:
            return target_bytes / rate if rate > 0 else math.inf
        cwnd, ssthresh = self.window_after_restart(now)
        _, elapsed, _, _ = integrate_window(cwnd, ssthresh, self.rtt,
                                            available_bw,
                                            bytes_limit=target_bytes)
        return elapsed

    def advance_analytic(self, now: float, dt: float,
                         available_bw: float) -> float:
        """Commit ``dt`` seconds of continuous sending; return bytes delivered.

        The mutating counterpart of :meth:`potential_bytes`: equivalent to
        running :meth:`advance` with ``sending=True`` over infinitely many
        infinitesimal ticks covering ``[now, now + dt]``.
        """
        self._maybe_idle_restart(now)
        delivered, _, cwnd, ssthresh = integrate_window(
            self.cwnd, self.ssthresh, self.rtt, available_bw, dt_limit=dt)
        self.cwnd = cwnd
        self.ssthresh = ssthresh
        self.last_send_time = now + dt
        return delivered

    def _maybe_idle_restart(self, now: float) -> None:
        """Apply RFC 2861 congestion-window validation after idle."""
        if self.last_send_time is None:
            return
        idle = now - self.last_send_time
        rto = max(MIN_RTO, 2.0 * self.rtt)
        if idle > rto:
            # Halve once per RTO elapsed, not below the initial window.  A
            # few dozen halvings already reach the floor; cap the exponent
            # so astronomically long idles cannot overflow.
            halvings = min(int(idle / rto), 64)
            self.ssthresh = max(self.cwnd * 0.75, INITIAL_CWND)
            self.cwnd = max(self.cwnd / (2.0 ** halvings), INITIAL_CWND)
            if self.on_idle_restart is not None:
                self.on_idle_restart(now)

    def reset(self) -> None:
        """Return to the initial (connection-start) state."""
        self.cwnd = float(INITIAL_CWND)
        self.ssthresh = float("inf")
        self.last_send_time = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (f"<TcpState cwnd={self.cwnd / PACKET_SIZE:.1f}pkts "
                f"rtt={self.rtt * 1000:.0f}ms>")
