"""Fluid-flow model of a single TCP subflow's sending rate.

The full packet-level behaviour of TCP is not needed to reproduce MP-DASH:
what matters to the paper's results is the *shape* of per-path throughput
over time —

* slow-start ramp at connection start and after idle periods (DASH traffic
  is on/off, so every chunk download after a buffer-full gap restarts from
  a reduced window; this is why the throttling baseline of Table 4 "dribbles"
  and why MP-DASH's burst-then-idle pattern is radio-energy friendly),
* congestion-avoidance tracking of the available bandwidth, and
* immediate rate collapse when the trace drops (the driver of cellular
  re-enablement in Algorithm 1).

We therefore model each subflow with a congestion window evolving in
continuous time: exponential growth below the bandwidth-delay product
(slow start), additive growth above it up to a small queue allowance
(congestion avoidance), and window restart after an idle period longer than
the retransmission timeout, per RFC 2861's congestion-window validation.
"""

from __future__ import annotations

from .units import PACKET_SIZE


#: Initial congestion window, bytes (10 segments, RFC 6928).
INITIAL_CWND = 10 * PACKET_SIZE

#: How much standing queue (as a fraction of BDP) the window may build
#: before the model stops growing it.  Small, because the paper's testbed is
#: explicitly configured to avoid bufferbloat.
QUEUE_ALLOWANCE = 0.25

#: Minimum retransmission timeout; idle longer than max(RTO, 2*RTT) causes a
#: window restart.
MIN_RTO = 0.2


class TcpState:
    """Congestion state of one subflow, advanced in fluid time steps."""

    def __init__(self, rtt: float):
        if rtt <= 0:
            raise ValueError(f"rtt must be positive: {rtt!r}")
        self.rtt = rtt
        self.cwnd = float(INITIAL_CWND)
        self.ssthresh = float("inf")
        self.last_send_time: float = None  # type: ignore[assignment]
        #: Observability hook: called with ``now`` whenever the idle-restart
        #: rule actually collapses the window (the subflow layer publishes a
        #: ``CwndRestarted`` event through it).
        self.on_idle_restart = None

    # ------------------------------------------------------------------
    def rate(self, available_bw: float) -> float:
        """Current achievable sending rate in bytes/second.

        The window-limited rate is ``cwnd / rtt``; the path then clips it to
        the available bandwidth of the link at this instant.
        """
        return min(self.cwnd / self.rtt, available_bw)

    def advance(self, now: float, dt: float, available_bw: float,
                sending: bool) -> float:
        """Advance the window by ``dt`` seconds; return bytes deliverable.

        ``sending`` is True when the application has data queued for this
        subflow.  When idle, the window decays via the restart rule instead
        of growing.
        """
        if not sending:
            return 0.0
        self._maybe_idle_restart(now)
        self.last_send_time = now + dt

        bdp = available_bw * self.rtt
        ceiling = bdp * (1.0 + QUEUE_ALLOWANCE)
        if self.cwnd < min(self.ssthresh, bdp):
            # Slow start: the window doubles once per RTT.
            self.cwnd = min(self.cwnd * (2.0 ** (dt / self.rtt)),
                            max(ceiling, INITIAL_CWND))
        elif self.cwnd < ceiling:
            # Congestion avoidance: one segment per RTT.
            self.cwnd = min(self.cwnd + PACKET_SIZE * (dt / self.rtt),
                            max(ceiling, INITIAL_CWND))
        else:
            # The trace dropped (or we overshot): fast-recovery style halving
            # toward the new ceiling, and remember it as ssthresh.
            self.cwnd = max(ceiling, INITIAL_CWND, self.cwnd / 2.0)
            self.ssthresh = max(self.cwnd, INITIAL_CWND)
        return self.rate(available_bw) * dt

    def _maybe_idle_restart(self, now: float) -> None:
        """Apply RFC 2861 congestion-window validation after idle."""
        if self.last_send_time is None:
            return
        idle = now - self.last_send_time
        rto = max(MIN_RTO, 2.0 * self.rtt)
        if idle > rto:
            # Halve once per RTO elapsed, not below the initial window.  A
            # few dozen halvings already reach the floor; cap the exponent
            # so astronomically long idles cannot overflow.
            halvings = min(int(idle / rto), 64)
            self.ssthresh = max(self.cwnd * 0.75, INITIAL_CWND)
            self.cwnd = max(self.cwnd / (2.0 ** halvings), INITIAL_CWND)
            if self.on_idle_restart is not None:
                self.on_idle_restart(now)

    def reset(self) -> None:
        """Return to the initial (connection-start) state."""
        self.cwnd = float(INITIAL_CWND)
        self.ssthresh = float("inf")
        self.last_send_time = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (f"<TcpState cwnd={self.cwnd / PACKET_SIZE:.1f}pkts "
                f"rtt={self.rtt * 1000:.0f}ms>")
