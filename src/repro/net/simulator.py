"""Discrete-event simulation kernel.

The kernel is deliberately small: a binary-heap event queue, a simulated
clock, and helpers for periodic processes.  Everything else in the package
(TCP dynamics, MPTCP scheduling, the DASH player) is built as callbacks
scheduled on a :class:`Simulator`.

Events fire in timestamp order; ties break in scheduling order, which keeps
runs fully deterministic.

The simulator also owns the session's :class:`~repro.obs.bus.EventBus`:
every layer built on top publishes its typed trace events there, so one
``sim.bus`` handle reaches the whole stack's event stream.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, Optional

from ..obs.bus import EventBus


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


#: Heaps smaller than this are never compacted: the scan costs more than
#: the garbage.
MIN_COMPACT_SIZE = 64


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events may be cancelled; a cancelled event stays in the heap but is
    skipped when popped (lazy deletion).  The owning simulator counts its
    cancelled entries and compacts the heap when they dominate, so
    repeated schedule/cancel cycles (timeouts that almost never fire)
    cannot grow the queue without bound.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {state} {self.callback!r}>"


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock."""

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._cancelled = 0
        self._ids = itertools.count(1)
        #: The session-wide typed event stream (see :mod:`repro.obs`).
        #: Injectable so a session can swap in e.g. a
        #: :class:`~repro.obs.profile.ProfiledBus`.
        self.bus = bus if bus is not None else EventBus()
        #: When set to a :class:`~repro.obs.profile.Profiler`, the run
        #: loop times every dispatched callback into it (opt-in; the
        #: ``None`` check is the only cost on the default path).
        self.profiler = None

    def next_id(self) -> int:
        """Draw from the run-scoped id sequence (connection ids etc.).

        Per-simulator rather than process-global so that two runs of the
        same configuration name their objects identically — the property
        that makes exported traces byte-identical across runs.
        """
        return next(self._ids)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        event = Event(self.now + delay, next(self._seq), callback, args)
        event._sim = self
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def call_every(self, interval: float, callback: Callable[..., Any],
                   *args: Any) -> "PeriodicProcess":
        """Run ``callback(*args)`` every ``interval`` seconds until stopped."""
        return PeriodicProcess(self, interval, callback, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events in order.

        Runs until the queue is empty, or until the clock would pass
        ``until`` (the clock is then advanced exactly to ``until``).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        # Local bindings shave attribute lookups off the hot loop; compact()
        # rebuilds the heap in place so the alias stays valid.
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    event._sim = None
                    self._cancelled -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heappop(heap)
                event._sim = None
                if event.time < self.now - 1e-12:
                    raise SimulationError(
                        f"event at {event.time} is behind clock {self.now}")
                self.now = max(self.now, event.time)
                profiler = self.profiler
                if profiler is None:
                    event.callback(*event.args)
                else:
                    started = perf_counter()
                    event.callback(*event.args)
                    profiler.record_callback(event.callback,
                                             perf_counter() - started)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.run(until=self.now + duration)

    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return len(self._heap) - self._cancelled

    # ------------------------------------------------------------------
    # Heap hygiene
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (len(self._heap) >= MIN_COMPACT_SIZE
                and 2 * self._cancelled > len(self._heap)):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Ordering is unaffected: live events keep their ``(time, seq)``
        keys, so the pop order after compaction is identical.
        """
        if self._cancelled == 0:
            return
        # In place (not a rebind) so aliases held by the run loop stay live.
        self._heap[:] = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0


class PeriodicProcess:
    """A callback re-armed every ``interval`` seconds.

    The first firing happens one interval from creation.  ``stop()`` halts
    the process; it can be restarted with ``start()``.
    """

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[..., Any], args: tuple):
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval!r}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None
        self.start()

    @property
    def active(self) -> bool:
        return self._event is not None

    def start(self) -> None:
        if self._event is None:
            self._event = self._sim.schedule(self.interval, self._fire)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        # Re-arm first so the callback may call stop() to halt the process.
        self._event = self._sim.schedule(self.interval, self._fire)
        self._callback(*self._args)


class Timer:
    """A single re-targetable wakeup that avoids heap churn.

    The event-driven kernel re-predicts its next decision point on every
    state change, which would naively mean one cancel + one push per
    prediction.  A :class:`Timer` keeps exactly one outstanding heap entry:

    * moving the target *earlier* pushes a fresh event (the stale one is
      cancelled and lazily dropped);
    * moving it *later* — the overwhelmingly common case, as predictions
      are refined while downloads progress — touches nothing; the stale
      event fires, notices the target has moved, and re-arms itself at the
      true target.

    One-shot semantics: after the callback runs, the timer is disarmed
    until :meth:`set` is called again (typically by the callback itself).
    """

    __slots__ = ("_sim", "_callback", "_event", "_target")

    def __init__(self, sim: Simulator, callback: Callable[[], Any]):
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self._target: Optional[float] = None

    @property
    def target(self) -> Optional[float]:
        """Absolute time of the pending wakeup, or None when disarmed."""
        return self._target

    @property
    def active(self) -> bool:
        return self._target is not None

    def set(self, time: Optional[float]) -> None:
        """Arm (or re-target) the wakeup at absolute simulated ``time``.

        ``None`` disarms.  Times at or before the clock fire as soon as the
        run loop resumes.
        """
        if time is None:
            self.cancel()
            return
        self._target = time
        if self._event is not None and not self._event.cancelled:
            if self._event.time <= time:
                return  # the pending event fires first and re-arms lazily
            self._event.cancel()
        delay = time - self._sim.now
        self._event = self._sim.schedule(delay if delay > 0.0 else 0.0,
                                         self._fire)

    def cancel(self) -> None:
        """Disarm.  Idempotent."""
        self._target = None
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        target = self._target
        if target is None:
            return
        if target > self._sim.now + 1e-9:
            # The target moved later after this event was pushed; re-arm.
            self._event = self._sim.schedule(target - self._sim.now,
                                             self._fire)
            return
        self._target = None
        self._callback()
