"""Discrete-event simulation kernel.

The kernel is deliberately small: a binary-heap event queue, a simulated
clock, and helpers for periodic processes.  Everything else in the package
(TCP dynamics, MPTCP scheduling, the DASH player) is built as callbacks
scheduled on a :class:`Simulator`.

Events fire in timestamp order; ties break in scheduling order, which keeps
runs fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events may be cancelled; a cancelled event stays in the heap but is
    skipped when popped (lazy deletion).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {state} {self.callback!r}>"


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        event = Event(self.now + delay, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def call_every(self, interval: float, callback: Callable[..., Any],
                   *args: Any) -> "PeriodicProcess":
        """Run ``callback(*args)`` every ``interval`` seconds until stopped."""
        return PeriodicProcess(self, interval, callback, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Process events in order.

        Runs until the queue is empty, or until the clock would pass
        ``until`` (the clock is then advanced exactly to ``until``).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.time < self.now - 1e-12:
                    raise SimulationError(
                        f"event at {event.time} is behind clock {self.now}")
                self.now = max(self.now, event.time)
                event.callback(*event.args)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.run(until=self.now + duration)

    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)


class PeriodicProcess:
    """A callback re-armed every ``interval`` seconds.

    The first firing happens one interval from creation.  ``stop()`` halts
    the process; it can be restarted with ``start()``.
    """

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[..., Any], args: tuple):
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval!r}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None
        self.start()

    @property
    def active(self) -> bool:
        return self._event is not None

    def start(self) -> None:
        if self._event is None:
            self._event = self._sim.schedule(self.interval, self._fire)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        # Re-arm first so the callback may call stop() to halt the process.
        self._event = self._sim.schedule(self.interval, self._fire)
        self._callback(*self._args)
