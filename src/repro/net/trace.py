"""Time-varying bandwidth traces.

A :class:`BandwidthTrace` is a piecewise-constant function of simulated time
returning available bandwidth in **bytes per second**.  Traces are the
substitute for the paper's real WiFi/LTE links: the controlled experiments
use Dummynet-pinned constant rates, the trace-driven simulation (§7.2.2)
replays recorded profiles, and the field study uses fluctuating open-WiFi
bandwidth — each has a generator here.

All stochastic generators take an explicit seed and are fully deterministic.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional, Sequence

import numpy as np

from .units import mbps


class BandwidthTrace:
    """Piecewise-constant bandwidth as a function of time.

    ``times`` are segment start offsets (seconds, ascending, starting at 0)
    and ``rates`` the bandwidth (bytes/second) holding from each start until
    the next.  Beyond the last segment the trace wraps around (loops), so a
    60-second recording can drive a 600-second session, matching how the
    paper replays collected traces.
    """

    def __init__(self, times: Sequence[float], rates: Sequence[float],
                 loop: bool = True):
        if len(times) != len(rates):
            raise ValueError("times and rates must have equal length")
        if not times:
            raise ValueError("trace must have at least one segment")
        if times[0] != 0:
            raise ValueError("first segment must start at time 0")
        for earlier, later in zip(times, times[1:]):
            if later <= earlier:
                raise ValueError("times must be strictly increasing")
        if any(r < 0 for r in rates):
            raise ValueError("bandwidth cannot be negative")
        self._times = list(times)
        self._rates = list(rates)
        self.loop = loop
        # Offsets (within one period) where the rate actually changes;
        # computed lazily because constructors mutate ``duration`` afterwards.
        self._changes: Optional[list] = None
        # Duration of the recorded portion; only meaningful when looping or
        # when the caller treats the trace as finite.
        if len(times) > 1:
            self.duration = times[-1] + (times[-1] - times[-2])
        else:
            self.duration = math.inf if not loop else 1.0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, rate_bytes_per_s: float) -> "BandwidthTrace":
        """A fixed-rate link (the Dummynet-shaped testbed case)."""
        trace = cls([0.0], [rate_bytes_per_s], loop=False)
        trace.duration = math.inf
        return trace

    @classmethod
    def from_samples(cls, rates: Iterable[float],
                     interval: float, loop: bool = True) -> "BandwidthTrace":
        """Build a trace from equally spaced samples (bytes/second)."""
        rates = list(rates)
        if interval <= 0:
            raise ValueError("interval must be positive")
        times = [i * interval for i in range(len(rates))]
        trace = cls(times, rates, loop=loop)
        trace.duration = len(rates) * interval
        return trace

    @classmethod
    def gaussian(cls, mean_bytes_per_s: float, sigma_fraction: float,
                 duration: float, interval: float,
                 seed: int) -> "BandwidthTrace":
        """Bounded-Gaussian fluctuation around a mean.

        This is the paper's synthetic profile (Table 1): instantaneous
        throughput with standard deviation ``sigma_fraction`` of the mean.
        Samples are clamped to stay non-negative (and below 2x mean so the
        mean is preserved approximately).
        """
        rng = np.random.default_rng(seed)
        count = max(1, int(math.ceil(duration / interval)))
        samples = rng.normal(mean_bytes_per_s,
                             sigma_fraction * mean_bytes_per_s, count)
        samples = np.clip(samples, 0.05 * mean_bytes_per_s,
                          2.0 * mean_bytes_per_s)
        return cls.from_samples(samples.tolist(), interval)

    @classmethod
    def random_walk(cls, mean_bytes_per_s: float, sigma_fraction: float,
                    duration: float, interval: float, seed: int,
                    reversion: float = 0.2) -> "BandwidthTrace":
        """Mean-reverting AR(1) random walk.

        Open public WiFi fluctuates with temporal correlation (Figure 5's
        FastFood/Coffee traces wander rather than jump), which an AR(1)
        process captures: each step pulls back toward the mean with strength
        ``reversion`` plus Gaussian innovation.
        """
        rng = np.random.default_rng(seed)
        count = max(1, int(math.ceil(duration / interval)))
        sigma = sigma_fraction * mean_bytes_per_s
        innovation = sigma * math.sqrt(max(1e-9, 2 * reversion - reversion ** 2))
        samples = []
        level = mean_bytes_per_s
        for _ in range(count):
            level += reversion * (mean_bytes_per_s - level)
            level += rng.normal(0.0, innovation)
            level = min(max(level, 0.05 * mean_bytes_per_s),
                        2.5 * mean_bytes_per_s)
            samples.append(level)
        return cls.from_samples(samples, interval)

    @classmethod
    def with_dropouts(cls, base: "BandwidthTrace", dropouts:
                      Sequence[tuple], floor_bytes_per_s: float = 0.0
                      ) -> "BandwidthTrace":
        """Overlay blackout windows onto an existing trace.

        ``dropouts`` is a sequence of ``(start, end)`` intervals during which
        the bandwidth collapses to ``floor_bytes_per_s``.  Used for the
        scenario-2 field locations where open WiFi intermittently stalls.
        """
        interval = 0.1
        horizon = base.duration if math.isfinite(base.duration) else (
            max(end for _, end in dropouts) + 1.0 if dropouts else 1.0)
        count = max(1, int(math.ceil(horizon / interval)))
        samples = []
        for i in range(count):
            t = i * interval
            rate = base.bandwidth_at(t)
            for start, end in dropouts:
                if start <= t < end:
                    rate = floor_bytes_per_s
                    break
            samples.append(rate)
        return cls.from_samples(samples, interval)

    @classmethod
    def mobility_walk(cls, peak_bytes_per_s: float, floor_bytes_per_s: float,
                      period: float, duration: float,
                      interval: float = 0.25, seed: int = 0,
                      jitter_fraction: float = 0.08) -> "BandwidthTrace":
        """WiFi bandwidth while walking away from and back toward an AP.

        Models the §7.3.4 mobility route: throughput follows a raised-cosine
        between ``peak`` (next to the AP) and ``floor`` (far side of the
        route) with period ``period`` seconds, plus small measurement jitter.
        """
        rng = np.random.default_rng(seed)
        count = max(1, int(math.ceil(duration / interval)))
        samples = []
        amplitude = (peak_bytes_per_s - floor_bytes_per_s) / 2.0
        midpoint = (peak_bytes_per_s + floor_bytes_per_s) / 2.0
        for i in range(count):
            t = i * interval
            level = midpoint + amplitude * math.cos(2 * math.pi * t / period)
            level += rng.normal(0.0, jitter_fraction * peak_bytes_per_s)
            samples.append(max(level, 0.0))
        return cls.from_samples(samples, interval)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def times(self) -> list:
        """Segment start offsets (seconds), a copy."""
        return list(self._times)

    @property
    def rates(self) -> list:
        """Per-segment bandwidth (bytes/second), a copy."""
        return list(self._rates)

    def bandwidth_at(self, time: float) -> float:
        """Available bandwidth (bytes/second) at simulated ``time``."""
        if time < 0:
            raise ValueError(f"time cannot be negative: {time!r}")
        if self.loop and math.isfinite(self.duration) and self.duration > 0:
            time = time % self.duration
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            index = 0
        return self._rates[index]

    def _change_points(self) -> list:
        """Offsets within one period at which the rate *actually* changes.

        Boundaries between equal-rate segments are dropped, so a trace built
        from identical samples reports no breakpoints at all.  For looping
        traces the wrap-around (``duration``) counts as a change when the
        last and first rates differ.
        """
        if self._changes is None:
            changes = [t for prev, rate, t in
                       zip(self._rates, self._rates[1:], self._times[1:])
                       if rate != prev]
            if (self.loop and math.isfinite(self.duration)
                    and self._rates[-1] != self._rates[0]):
                changes.append(self.duration)
            self._changes = changes
        return self._changes

    def next_change(self, time: float) -> float:
        """Absolute time of the first rate change strictly after ``time``.

        Returns ``math.inf`` when the rate never changes again (constant
        traces, non-looping traces past their last breakpoint, or traces
        whose samples all share one value).  This is the breakpoint iterator
        the event-driven kernel walks: between ``time`` and the returned
        instant, :meth:`bandwidth_at` is guaranteed constant.
        """
        if time < 0:
            raise ValueError(f"time cannot be negative: {time!r}")
        changes = self._change_points()
        if not changes:
            return math.inf
        looping = self.loop and math.isfinite(self.duration) and self.duration > 0
        if not looping:
            index = bisect.bisect_right(changes, time)
            return changes[index] if index < len(changes) else math.inf
        offset = time % self.duration
        base = time - offset
        index = bisect.bisect_right(changes, offset)
        if index < len(changes):
            return base + changes[index]
        return base + self.duration + changes[0]

    def segment(self, time: float) -> tuple:
        """``(rate, until)``: the rate holding at ``time`` and the absolute
        time it next changes (``math.inf`` if never)."""
        return self.bandwidth_at(time), self.next_change(time)

    def mean_bandwidth(self) -> float:
        """Time-weighted mean bandwidth over one recorded period."""
        if len(self._times) == 1:
            return self._rates[0]
        total = 0.0
        for i, rate in enumerate(self._rates):
            start = self._times[i]
            end = self._times[i + 1] if i + 1 < len(self._times) else self.duration
            total += rate * (end - start)
        return total / self.duration

    def scaled(self, factor: float) -> "BandwidthTrace":
        """A copy of this trace with every rate multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor cannot be negative")
        clone = BandwidthTrace(self._times, [r * factor for r in self._rates],
                               loop=self.loop)
        clone.duration = self.duration
        return clone

    def capped(self, cap_bytes_per_s: float) -> "BandwidthTrace":
        """A copy of this trace with rates clamped to ``cap`` (Dummynet-style
        throttling, used by the Table 4 cellular-throttling baseline)."""
        if cap_bytes_per_s < 0:
            raise ValueError("cap cannot be negative")
        clone = BandwidthTrace(
            self._times, [min(r, cap_bytes_per_s) for r in self._rates],
            loop=self.loop)
        clone.duration = self.duration
        return clone

    def samples(self, interval: float, duration: float) -> list:
        """Sample the trace every ``interval`` seconds for ``duration``."""
        count = max(1, int(math.ceil(duration / interval)))
        return [self.bandwidth_at(i * interval) for i in range(count)]

    def __repr__(self) -> str:
        return (f"<BandwidthTrace segments={len(self._rates)} "
                f"mean={self.mean_bandwidth() * 8 / 1e6:.2f}Mbps "
                f"loop={self.loop}>")


def constant_mbps(rate: float) -> BandwidthTrace:
    """Shorthand for a constant trace given a rate in Mbps."""
    return BandwidthTrace.constant(mbps(rate))
