"""Network substrate: simulation kernel, bandwidth traces, paths, TCP."""

from .link import CELLULAR, WIFI, Path, cellular_path, wifi_path
from .simulator import Event, PeriodicProcess, SimulationError, Simulator
from .tcp import INITIAL_CWND, TcpState
from .trace import BandwidthTrace, constant_mbps
from .units import (KB, MB, PACKET_SIZE, kbps, mbps, megabytes, milliseconds,
                    to_mbps, to_megabytes)

__all__ = [
    "BandwidthTrace", "CELLULAR", "Event", "INITIAL_CWND", "KB", "MB",
    "PACKET_SIZE", "Path", "PeriodicProcess", "SimulationError", "Simulator",
    "TcpState", "WIFI", "cellular_path", "constant_mbps", "kbps", "mbps",
    "megabytes", "milliseconds", "to_mbps", "to_megabytes", "wifi_path",
]
