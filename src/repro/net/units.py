"""Unit helpers used throughout the simulator.

All internal arithmetic uses **bytes** and **seconds**.  Anything expressed in
bits, megabits, kilobits, or milliseconds at an API boundary goes through the
explicit converters below so that a reader never has to guess the unit of a
bare number.
"""

from __future__ import annotations

#: Bytes per kilobyte / megabyte (decimal, matching network conventions).
KB = 1000
MB = 1000 * 1000

#: Default MTU-sized payload used by the packet-granularity scheduler loop.
PACKET_SIZE = 1448


def mbps(value: float) -> float:
    """Convert megabits per second to bytes per second."""
    return value * 1e6 / 8.0


def kbps(value: float) -> float:
    """Convert kilobits per second to bytes per second."""
    return value * 1e3 / 8.0


def to_mbps(bytes_per_second: float) -> float:
    """Convert bytes per second to megabits per second."""
    return bytes_per_second * 8.0 / 1e6


def megabytes(value: float) -> int:
    """Convert megabytes to bytes (rounded to an integer byte count)."""
    return int(round(value * MB))


def to_megabytes(num_bytes: float) -> float:
    """Convert bytes to megabytes."""
    return num_bytes / MB


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value / 1000.0
