"""Network path model.

A :class:`Path` is one end-to-end route between client and server — the
paper's WiFi path or LTE path.  It bundles the link's time-varying bandwidth
trace, its round-trip time, and the attributes the MP-DASH scheduler reasons
about: a unit-data cost (the c(i, j) of the §4 formulation) and an
``enabled`` flag, which is the single control point the deadline-aware
scheduler toggles ("disabling" a subflow means skipping it in the MPTCP
scheduling function, exactly as the kernel implementation does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .trace import BandwidthTrace
from .units import mbps, milliseconds


#: Canonical interface names used across the package.
WIFI = "wifi"
CELLULAR = "cellular"


@dataclass
class Path:
    """One network path (interface) between client and server."""

    name: str
    trace: BandwidthTrace
    rtt: float
    #: Relative unit-data cost; the scheduler prefers lower-cost paths.
    #: Data usage, energy, or a blend — the paper leaves the semantics to
    #: the user's policy, only the ordering matters to Algorithm 1.
    cost: float = 1.0
    #: Whether the MPTCP scheduler may place packets on this path.  This is
    #: what MP-DASH toggles; it is *not* radio power state (the radio stays
    #: attached, so re-enabling costs no handshake).
    enabled: bool = True
    #: Optional hard throttle applied on top of the trace (the Table 4
    #: cellular throttling baseline).  None means unthrottled.
    throttle: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rtt <= 0:
            raise ValueError(f"rtt must be positive: {self.rtt!r}")
        if self.cost < 0:
            raise ValueError(f"cost cannot be negative: {self.cost!r}")

    def bandwidth_at(self, time: float) -> float:
        """Available bandwidth (bytes/second) at ``time``, post-throttle."""
        rate = self.trace.bandwidth_at(time)
        if self.throttle is not None:
            rate = min(rate, self.throttle)
        return rate

    def next_change(self, time: float) -> float:
        """Absolute time the post-throttle bandwidth next changes.

        Delegates to the trace's breakpoint iterator.  Under a throttle a
        trace-level change may leave the clipped rate unchanged; callers
        treat such wakeups as harmless no-ops rather than paying a
        scan-ahead here.
        """
        return self.trace.next_change(time)

    def mean_bandwidth(self) -> float:
        rate = self.trace.mean_bandwidth()
        if self.throttle is not None:
            rate = min(rate, self.throttle)
        return rate

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"<Path {self.name} {state} "
                f"rtt={self.rtt * 1000:.0f}ms cost={self.cost}>")


def wifi_path(bandwidth_mbps: Optional[float] = None,
              rtt_ms: float = 50.0,
              trace: Optional[BandwidthTrace] = None,
              cost: float = 0.0) -> Path:
    """Build the WiFi path of the paper's testbed.

    Defaults follow §7.1: RTT shaped to 50 ms (typical metropolitan WiFi)
    and zero marginal cost (unmetered).  Pass either a constant
    ``bandwidth_mbps`` or a full ``trace``.
    """
    if (bandwidth_mbps is None) == (trace is None):
        raise ValueError("provide exactly one of bandwidth_mbps or trace")
    if trace is None:
        trace = BandwidthTrace.constant(mbps(bandwidth_mbps))
    return Path(WIFI, trace, milliseconds(rtt_ms), cost=cost)


def cellular_path(bandwidth_mbps: Optional[float] = None,
                  rtt_ms: float = 55.0,
                  trace: Optional[BandwidthTrace] = None,
                  cost: float = 1.0) -> Path:
    """Build the LTE path of the paper's testbed.

    Defaults follow §7.1: 50-60 ms RTT on a commercial LTE network, and a
    positive cost (metered data) so the preference ordering puts it after
    WiFi.
    """
    if (bandwidth_mbps is None) == (trace is None):
        raise ValueError("provide exactly one of bandwidth_mbps or trace")
    if trace is None:
        trace = BandwidthTrace.constant(mbps(bandwidth_mbps))
    return Path(CELLULAR, trace, milliseconds(rtt_ms), cost=cost)
