"""The DASH video server.

The paper's testbed runs an unmodified Apache serving static chunk files —
all the intelligence lives on the client.  Accordingly the server here is a
static resource catalog: it hosts video assets, serves their manifests, and
resolves chunk URLs to byte sizes (which become Content-Length).  It has no
MP-DASH logic; the server-side enforcement function of the scheduler lives
in the MPTCP layer (``repro.mptcp``), keeping the server application
untouched, as §8 emphasizes for deployability.
"""

from __future__ import annotations

import re
from typing import Dict, Optional

from .manifest import Manifest
from .media import VideoAsset

_CHUNK_URL = re.compile(r"^/(?P<video>[^/]+)/level(?P<level>\d+)"
                        r"/chunk(?P<index>\d+)$")


class DashServer:
    """Static chunk store resolving request paths to body sizes."""

    def __init__(self) -> None:
        self._assets: Dict[str, VideoAsset] = {}

    def host(self, asset: VideoAsset) -> None:
        """Publish a video asset."""
        if asset.name in self._assets:
            raise ValueError(f"asset {asset.name!r} already hosted")
        self._assets[asset.name] = asset

    def manifest(self, video_name: str,
                 sizes_included: bool = False) -> Manifest:
        """The MPD for a hosted video."""
        return Manifest(self._asset(video_name), sizes_included)

    def resolve(self, path: str) -> Optional[float]:
        """Map a chunk URL to its size in bytes; None if not found."""
        match = _CHUNK_URL.match(path)
        if match is None:
            return None
        asset = self._assets.get(match.group("video"))
        if asset is None:
            return None
        level = int(match.group("level"))
        index = int(match.group("index"))
        if level >= asset.num_levels or index >= asset.num_chunks:
            return None
        return asset.chunk_size(level, index)

    def hosted(self) -> list:
        return sorted(self._assets)

    def _asset(self, name: str) -> VideoAsset:
        try:
            return self._assets[name]
        except KeyError:
            raise KeyError(f"video {name!r} not hosted "
                           f"(hosted: {self.hosted()})") from None

    def __repr__(self) -> str:
        return f"<DashServer assets={self.hosted()}>"
