"""DASH media model: quality levels, chunks, and video assets.

A DASH video is split into chunks of equal playout duration, each encoded at
several discrete bitrate levels (the paper's videos use 4-second chunks and
five levels; Table 3 lists the ladders).  Chunk sizes vary around
``bitrate × duration`` because encoders are variable-bitrate; the size
variation matters to MP-DASH because the rate-based deadline budgets each
chunk by its *actual* size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..net.units import mbps


@dataclass(frozen=True)
class QualityLevel:
    """One rung of the encoding ladder."""

    #: 0-based index; the paper numbers levels 1 (lowest) to 5 (highest).
    index: int
    #: Nominal (average) encoding bitrate, bytes/second.
    bitrate: float

    @property
    def bitrate_mbps(self) -> float:
        return self.bitrate * 8.0 / 1e6

    @property
    def paper_level(self) -> int:
        """1-based level number as the paper reports it."""
        return self.index + 1


class VideoAsset:
    """A fully described DASH video: ladder plus per-chunk sizes."""

    def __init__(self, name: str, chunk_duration: float,
                 levels: Sequence[QualityLevel],
                 chunk_sizes: Sequence[Sequence[float]]):
        if chunk_duration <= 0:
            raise ValueError(
                f"chunk duration must be positive: {chunk_duration!r}")
        if not levels:
            raise ValueError("a video needs at least one quality level")
        if len(chunk_sizes) != len(levels):
            raise ValueError("chunk_sizes must have one row per level")
        counts = {len(row) for row in chunk_sizes}
        if len(counts) != 1:
            raise ValueError(f"levels disagree on chunk count: {counts}")
        ordered = sorted(levels, key=lambda lv: lv.index)
        if [lv.index for lv in ordered] != list(range(len(levels))):
            raise ValueError("level indices must be 0..n-1")
        for lower, higher in zip(ordered, ordered[1:]):
            if higher.bitrate <= lower.bitrate:
                raise ValueError("level bitrates must be strictly increasing")
        self.name = name
        self.chunk_duration = chunk_duration
        self.levels: List[QualityLevel] = ordered
        self._sizes = [list(row) for row in chunk_sizes]

    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, name: str, chunk_duration: float,
                 duration: float, bitrates_mbps: Sequence[float],
                 seed: int, vbr_sigma: float = 0.12) -> "VideoAsset":
        """Synthesize an asset with VBR chunk-size variation.

        Chunk sizes are lognormal around ``bitrate × duration`` with
        coefficient of variation ``vbr_sigma``, then rescaled per level so
        the *average* bitrate is exactly nominal (as Table 3 reports average
        encoding bitrates).  The size pattern is shared across levels (a
        complex scene is big at every level), which is how real encoders
        behave and what makes duration-based deadlines pay extra cellular on
        big chunks at every level.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration!r}")
        num_chunks = max(1, int(round(duration / chunk_duration)))
        rng = np.random.default_rng(seed)
        # One shared complexity factor per chunk position.
        sigma = max(vbr_sigma, 1e-6)
        factors = rng.lognormal(mean=-0.5 * np.log(1 + sigma ** 2),
                                sigma=np.sqrt(np.log(1 + sigma ** 2)),
                                size=num_chunks)
        factors = np.clip(factors, 0.5, 2.0)
        factors *= num_chunks / factors.sum()  # exact-mean normalization

        levels = [QualityLevel(i, mbps(rate))
                  for i, rate in enumerate(bitrates_mbps)]
        chunk_sizes = []
        for level in levels:
            nominal = level.bitrate * chunk_duration
            chunk_sizes.append([nominal * f for f in factors])
        return cls(name, chunk_duration, levels, chunk_sizes)

    # ------------------------------------------------------------------
    @property
    def num_chunks(self) -> int:
        return len(self._sizes[0])

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def duration(self) -> float:
        return self.num_chunks * self.chunk_duration

    def chunk_size(self, level: int, index: int) -> float:
        """Size in bytes of chunk ``index`` at quality ``level``."""
        self._check(level, index)
        return self._sizes[level][index]

    def level(self, index: int) -> QualityLevel:
        if not 0 <= index < self.num_levels:
            raise IndexError(f"level {index} out of range "
                             f"(0..{self.num_levels - 1})")
        return self.levels[index]

    def bitrates(self) -> List[float]:
        """Nominal bitrates (bytes/second), lowest first."""
        return [lv.bitrate for lv in self.levels]

    def highest_sustainable_level(self, throughput: float) -> int:
        """Highest level whose nominal bitrate fits within ``throughput``
        (bytes/second); level 0 if even the lowest does not fit."""
        best = 0
        for level in self.levels:
            if level.bitrate <= throughput:
                best = level.index
        return best

    def _check(self, level: int, index: int) -> None:
        if not 0 <= level < self.num_levels:
            raise IndexError(f"level {level} out of range "
                             f"(0..{self.num_levels - 1})")
        if not 0 <= index < self.num_chunks:
            raise IndexError(f"chunk {index} out of range "
                             f"(0..{self.num_chunks - 1})")

    def __repr__(self) -> str:
        rates = ", ".join(f"{lv.bitrate_mbps:.2f}" for lv in self.levels)
        return (f"<VideoAsset {self.name!r} {self.num_chunks}x"
                f"{self.chunk_duration:g}s levels=[{rates}]Mbps>")
