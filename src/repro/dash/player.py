"""The DASH video player.

Drives the whole client side: asks the ABR algorithm for each chunk's
quality level, issues HTTP GETs, fills the playback buffer, drains it while
playing, and records the event log the analysis tool consumes.

The player knows nothing about multipath — MPTCP is transparent to it, as
in reality.  MP-DASH slots in through the :class:`PlayerAddon` hook (the
video adapter of §5): the addon may inject a transport-level throughput
override before each rate decision and arm the deadline scheduler once the
chunk's Content-Length is known.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..net.simulator import Simulator, Timer
from ..obs.events import (ChunkDownloaded, ChunkRequested, MpDashArmed,
                          MpDashSkipped, PlaybackEnded, PlaybackStarted,
                          QualitySwitched, StallEnd, StallStart)

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from ..abr.base import AbrAlgorithm, AbrContext
from .buffer import PlaybackBuffer
from .events import ChunkRecord, PlayerEventLog
from .http import HttpClient, HttpResponse
from .manifest import Manifest


class _LazyDrainBuffer(PlaybackBuffer):
    """A playback buffer whose occupancy commits lazily (event playout).

    Between syncs the true occupancy is ``_level - (now - synced_at)``;
    every public read routes through the owning player's
    :meth:`DashPlayer._sync_playout` so external readers (the MP-DASH
    adapter, ABR contexts, tests) always observe the drained value.  The
    player itself reads ``_level`` directly after syncing.
    """

    def __init__(self, capacity: float, player: "DashPlayer"):
        super().__init__(capacity)
        self._player = player

    @property
    def level(self) -> float:
        self._player._sync_playout()
        return self._level

    @property
    def free(self) -> float:
        self._player._sync_playout()
        return max(0.0, self.capacity - self._level)

    @property
    def empty(self) -> bool:
        self._player._sync_playout()
        return self._level <= 1e-9

    def fits(self, seconds: float) -> bool:
        self._player._sync_playout()
        return super().fits(seconds)


class PlayerAddon:
    """Hook points the MP-DASH video adapter implements.

    The default implementations are no-ops, so a player without MP-DASH is
    exactly a vanilla DASH player over vanilla MPTCP.
    """

    def throughput_override(self, player: "DashPlayer") -> Optional[float]:
        """Transport-level throughput to feed the ABR, or None."""
        return None

    def on_chunk_request(self, player: "DashPlayer", level: int,
                         size: float) -> Optional[float]:
        """Called with the resolved Content-Length before the body transfer.

        Returns the armed deadline window in seconds, or None when MP-DASH
        stays disabled for this chunk.
        """
        return None

    def on_chunk_downloaded(self, player: "DashPlayer",
                            record: ChunkRecord) -> None:
        """Called after each chunk lands."""


class DashPlayer:
    """An adaptive-streaming client over one HTTP connection."""

    def __init__(self, sim: Simulator, client: HttpClient,
                 manifest: Manifest, abr: AbrAlgorithm,
                 addon: Optional[PlayerAddon] = None,
                 buffer_capacity: float = 40.0,
                 startup_threshold: Optional[float] = None,
                 resume_threshold: Optional[float] = None,
                 tick_interval: float = 0.1,
                 playout: str = "tick"):
        """``playout`` selects the playout clock: ``"tick"`` drains the
        buffer on a fixed ``tick_interval`` grid (the reference), while
        ``"event"`` drains it lazily against the simulated clock and
        schedules exact wakeups for the only autonomous transitions a
        draining buffer has — running empty (stall or playback end) and
        draining far enough for the next chunk to fit.  Event playout
        pairs with the connection's ``kernel="fast"``; both modes publish
        the same event sequence up to tick-grid rounding.
        """
        if buffer_capacity < 2 * manifest.chunk_duration:
            raise ValueError(
                f"buffer capacity {buffer_capacity}s too small for "
                f"{manifest.chunk_duration}s chunks")
        if playout not in ("tick", "event"):
            raise ValueError(f"unknown playout {playout!r} "
                             f"(known: tick, event)")
        self.sim = sim
        self.client = client
        self.manifest = manifest
        self.abr = abr
        self.addon = addon if addon is not None else PlayerAddon()
        self.playout = playout
        if playout == "event":
            self.buffer = _LazyDrainBuffer(buffer_capacity, self)
        else:
            self.buffer = PlaybackBuffer(buffer_capacity)
        default_threshold = min(2 * manifest.chunk_duration,
                                buffer_capacity / 2)
        self.startup_threshold = (startup_threshold if startup_threshold
                                  is not None else default_threshold)
        self.resume_threshold = (resume_threshold if resume_threshold
                                 is not None else default_threshold)
        self.tick_interval = tick_interval
        # The player narrates the session onto the bus; its event log is
        # just the first subscriber (the analyzer-facing view).
        self.bus = sim.bus
        self.log = PlayerEventLog()
        self.log.attach(self.bus)
        self.buffer_samples: List[Tuple[float, float]] = []

        self._next_index = 0
        self._current_level: Optional[int] = None
        self._outstanding = False
        self._playing = False
        self._stalled = False
        self._downloads_done = False
        self.finished = False
        self._ticker = None
        # Event playout state: the single wakeup timer, the instant the
        # buffer occupancy was last committed, and a reentrancy guard (a
        # sync may publish events whose subscribers read the buffer back).
        self._timer: Optional[Timer] = None
        self._synced_at = 0.0
        self._syncing = False

    # ------------------------------------------------------------------
    # Session control
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the session: request chunk 0 and start the playout clock."""
        if self._ticker is not None or self._timer is not None:
            raise RuntimeError("player already started")
        if self.playout == "event":
            self._timer = Timer(self.sim, self._on_wake)
            self._synced_at = self.sim.now
        else:
            self._ticker = self.sim.call_every(self.tick_interval,
                                               self._on_tick)
        self._maybe_request()

    @property
    def in_startup(self) -> bool:
        return not self._playing

    @property
    def current_level(self) -> Optional[int]:
        return self._current_level

    @property
    def next_chunk_index(self) -> int:
        return self._next_index

    # ------------------------------------------------------------------
    # Chunk requests
    # ------------------------------------------------------------------
    def _maybe_request(self) -> None:
        if (self._outstanding or self._downloads_done or self.finished
                or self._next_index >= self.manifest.num_chunks):
            return
        if not self.buffer.fits(self.manifest.chunk_duration):
            return  # wait for playback to drain; the tick loop re-checks
        level = self._choose_level()
        index = self._next_index
        self._outstanding = True
        url = self.manifest.chunk_url(level, index)
        requested_at = self.sim.now
        buffer_at_request = self.buffer.level
        self.bus.publish(ChunkRequested(requested_at, index, level,
                                        buffer_at_request))

        deadline_holder = {}

        def before_transfer(response: HttpResponse) -> None:
            size = float(response.content_length)
            deadline = self.addon.on_chunk_request(self, level, size)
            deadline_holder["deadline"] = deadline
            if deadline is not None:
                self.bus.publish(MpDashArmed(self.sim.now, index, deadline))
            else:
                self.bus.publish(MpDashSkipped(self.sim.now, index))

        def on_complete(response: HttpResponse) -> None:
            if not response.ok:
                raise RuntimeError(f"chunk request failed: {url}")
            self._on_chunk_done(response, index, level, requested_at,
                                buffer_at_request,
                                deadline_holder.get("deadline"))

        self.client.get(url, on_complete, before_transfer)

    def _choose_level(self) -> int:
        if self._next_index == 0:
            level = self.abr.initial_level(self.manifest)
        else:
            ctx = self._make_context()
            level = self.abr.choose_level(ctx)
        if not 0 <= level < self.manifest.num_levels:
            raise ValueError(
                f"ABR {self.abr.name!r} chose invalid level {level}")
        return level

    def _make_context(self) -> "AbrContext":
        from ..abr.base import AbrContext

        last = self.log.chunks[-1] if self.log.chunks else None
        return AbrContext(
            manifest=self.manifest,
            buffer_level=self.buffer.level,
            buffer_capacity=self.buffer.capacity,
            next_chunk_index=self._next_index,
            current_level=self._current_level,
            measured_throughput=last.throughput if last else None,
            override_throughput=self.addon.throughput_override(self),
            history=self.log.chunks,
            in_startup=self.in_startup,
        )

    def _on_chunk_done(self, response: HttpResponse, index: int, level: int,
                       requested_at: float, buffer_at_request: float,
                       deadline: Optional[float]) -> None:
        self._sync_playout()
        now = self.sim.now
        transfer = response.transfer
        elapsed = max(now - requested_at, 1e-9)
        if self._current_level is not None and level != self._current_level:
            self.bus.publish(QualitySwitched(now, self._current_level,
                                             level))
        self._current_level = level
        self.bus.publish(ChunkDownloaded(
            now, index=index, level=level,
            size=float(response.content_length),
            duration=self.manifest.chunk_duration,
            requested_at=requested_at,
            throughput=float(response.content_length) / elapsed,
            bytes_per_path=dict(transfer.per_path) if transfer else {},
            deadline=deadline, buffer_at_request=buffer_at_request))
        # The log subscriber just materialized the canonical ChunkRecord.
        record = self.log.chunks[-1]
        self.buffer.add(self.manifest.chunk_duration)
        self.abr.on_chunk_downloaded(record)
        self.addon.on_chunk_downloaded(self, record)

        self._outstanding = False
        self._next_index = index + 1
        if self._next_index >= self.manifest.num_chunks:
            self._downloads_done = True
        if not self._playing and self.buffer.level >= self.startup_threshold:
            self._begin_playback()
        if self._downloads_done and not self._playing:
            # Very short videos: everything buffered before startup fired.
            self._begin_playback()
        if (self._timer is not None and self._stalled
                and (self.buffer.level >= self.resume_threshold
                     or (self._downloads_done and self.buffer.level > 0))):
            # Chunk arrivals are the only refills, so under event playout
            # the stall ends exactly here (the tick loop re-checks this on
            # its own grid instead).
            self._stalled = False
            self.bus.publish(StallEnd(now))
        self._maybe_request()
        self._predict_playout()

    def _begin_playback(self) -> None:
        self._playing = True
        self.bus.publish(PlaybackStarted(self.sim.now))

    # ------------------------------------------------------------------
    # Playout clock
    # ------------------------------------------------------------------
    def _on_tick(self) -> None:
        now = self.sim.now
        self.buffer_samples.append((now, self.buffer.level))
        if self.finished:
            return
        if self._playing and not self._stalled:
            played = self.buffer.drain(self.tick_interval)
            if self.buffer.empty:
                if self._downloads_done:
                    self._end_playback()
                elif played < self.tick_interval - 1e-9:
                    self._stalled = True
                    self.bus.publish(StallStart(now))
        elif self._stalled:
            if (self.buffer.level >= self.resume_threshold
                    or (self._downloads_done and self.buffer.level > 0)):
                self._stalled = False
                self.bus.publish(StallEnd(now))
        self._maybe_request()

    def _end_playback(self) -> None:
        self.finished = True
        self.bus.publish(PlaybackEnded(self.sim.now))
        if self._ticker is not None:
            self._ticker.stop()
        if self._timer is not None:
            self._timer.cancel()

    # ------------------------------------------------------------------
    # Event playout clock (playout="event")
    # ------------------------------------------------------------------
    # While playing, buffer occupancy is a known linear function of time
    # (drain rate exactly 1); between chunk arrivals the only autonomous
    # transitions are the buffer running empty and a blocked request
    # starting to fit.  Both instants are computed exactly and armed on a
    # single :class:`Timer`; everything else happens at chunk arrivals.

    def _sync_playout(self) -> None:
        """Commit the continuous drain since the last sync (event mode)."""
        if self._timer is None or self._syncing:
            return
        now = self.sim.now
        dt = now - self._synced_at
        if dt <= 0:
            return
        self._syncing = True
        try:
            self._synced_at = now
            if self.finished or not self._playing or self._stalled:
                return
            self.buffer.drain(dt)
            self.buffer_samples.append((now, self.buffer._level))
            if self.buffer._level <= 1e-9:
                # The wakeup lands exactly on the empty instant, so the
                # stall (or the end of playback) starts at ``now``.
                if self._downloads_done:
                    self._end_playback()
                else:
                    self._stalled = True
                    self.bus.publish(StallStart(now))
        finally:
            self._syncing = False

    def _on_wake(self) -> None:
        self._sync_playout()
        self._maybe_request()
        self._predict_playout()

    def _predict_playout(self) -> None:
        """Arm the timer at the next autonomous playout transition."""
        if self._timer is None:
            return
        if self.finished:
            self._timer.cancel()
            return
        if not self._playing or self._stalled:
            # Occupancy can only change via chunk arrivals; nothing to
            # wake for.
            self._timer.set(None)
            return
        level = self.buffer._level
        target = self._synced_at + level  # runs empty: stall or end
        if (not self._outstanding and not self._downloads_done
                and self._next_index < self.manifest.num_chunks
                and not self.buffer.fits(self.manifest.chunk_duration)):
            # A blocked request unblocks once one chunk's worth drains.
            fits_at = self._synced_at + (
                level + self.manifest.chunk_duration - self.buffer.capacity)
            if fits_at < target:
                target = fits_at
        self._timer.set(target)

    def __repr__(self) -> str:
        return (f"<DashPlayer video={self.manifest.video_name!r} "
                f"abr={self.abr.name} chunk={self._next_index}/"
                f"{self.manifest.num_chunks} buffer={self.buffer.level:.1f}s>")
