"""DASH streaming stack: media model, manifest, HTTP, server, player."""

from .buffer import PlaybackBuffer
from .events import (ChunkRecord, PlayerEvent, PlayerEventLog, StallRecord,
                     DOWNLOADED, MPDASH_ARMED, MPDASH_SKIPPED, PLAY_START,
                     PLAYBACK_END, QUALITY_SWITCH, REQUEST, STALL_END,
                     STALL_START)
from .http import HttpClient, HttpRequest, HttpResponse
from .manifest import Manifest, Representation
from .media import QualityLevel, VideoAsset
from .player import DashPlayer, PlayerAddon
from .server import DashServer

__all__ = [
    "ChunkRecord", "DashPlayer", "DashServer", "HttpClient", "HttpRequest",
    "HttpResponse", "Manifest", "PlaybackBuffer", "PlayerAddon",
    "PlayerEvent", "PlayerEventLog", "QualityLevel", "Representation",
    "StallRecord", "VideoAsset",
    "DOWNLOADED", "MPDASH_ARMED", "MPDASH_SKIPPED", "PLAY_START",
    "PLAYBACK_END", "QUALITY_SWITCH", "REQUEST", "STALL_END", "STALL_START",
]
