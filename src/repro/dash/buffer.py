"""Playback buffer model.

The buffer holds downloaded-but-unplayed video, measured in seconds of
content.  It fills by whole chunks when downloads complete and drains
continuously while playing.  Its occupancy is the signal everything in
MP-DASH keys off: BBA's rate map, the Φ deadline-extension threshold, the
Ω low-buffer disable threshold, and stall detection.
"""

from __future__ import annotations


class PlaybackBuffer:
    """Seconds-of-content buffer with a hard capacity."""

    def __init__(self, capacity: float):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity!r}")
        self.capacity = capacity
        self._level = 0.0
        #: Total seconds ever drained (i.e. played).
        self.total_played = 0.0

    @property
    def level(self) -> float:
        """Current occupancy in seconds of content."""
        return self._level

    @property
    def free(self) -> float:
        return max(0.0, self.capacity - self._level)

    @property
    def empty(self) -> bool:
        return self._level <= 1e-9

    def add(self, seconds: float) -> None:
        """Add a downloaded chunk's duration.

        A well-behaved player never requests a chunk that would not fit, so
        exceeding capacity is a caller bug and raises.
        """
        if seconds <= 0:
            raise ValueError(f"cannot add non-positive content: {seconds!r}")
        if self._level + seconds > self.capacity + 1e-6:
            raise ValueError(
                f"buffer overflow: {self._level:.3f}+{seconds:.3f} "
                f"> capacity {self.capacity:.3f}")
        self._level = min(self.capacity, self._level + seconds)

    def drain(self, seconds: float) -> float:
        """Consume up to ``seconds`` of content; returns seconds actually
        played (less when the buffer runs dry — a stall)."""
        if seconds < 0:
            raise ValueError(f"cannot drain negative time: {seconds!r}")
        played = min(seconds, self._level)
        self._level -= played
        self.total_played += played
        return played

    def fits(self, seconds: float) -> bool:
        """Whether a chunk of ``seconds`` can be added without overflow."""
        return self._level + seconds <= self.capacity + 1e-9

    def __repr__(self) -> str:
        return (f"<PlaybackBuffer {self._level:.1f}/{self.capacity:.1f}s>")
