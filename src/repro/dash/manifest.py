"""The DASH manifest (MPD).

A manifest describes the encoding ladder and chunk timeline of a video.  As
the paper notes (§5.1), chunk *sizes* are not a mandatory MPD field — in
practice MP-DASH reads them from the Content-Length header of each HTTP
response.  The manifest therefore carries sizes only when
``sizes_included`` is set (the "chunk size should be mandatory" position of
Yin et al. that the paper endorses); otherwise players learn a chunk's size
at request time from the server's response metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .media import QualityLevel, VideoAsset


@dataclass(frozen=True)
class Representation:
    """One encoding of the video (a ladder rung) as advertised in the MPD."""

    level: QualityLevel
    #: URL template for this representation's chunks.
    url_template: str


class Manifest:
    """An MPD-like description of one video asset."""

    def __init__(self, asset: VideoAsset, sizes_included: bool = False):
        self.video_name = asset.name
        self.chunk_duration = asset.chunk_duration
        self.num_chunks = asset.num_chunks
        self.representations: List[Representation] = [
            Representation(level,
                           f"/{asset.name}/level{level.index}/chunk$Number$")
            for level in asset.levels
        ]
        self.sizes_included = sizes_included
        self._sizes: Optional[List[List[float]]] = None
        if sizes_included:
            self._sizes = [[asset.chunk_size(lv.index, i)
                            for i in range(asset.num_chunks)]
                           for lv in asset.levels]

    @property
    def num_levels(self) -> int:
        return len(self.representations)

    def bitrates(self) -> List[float]:
        """Nominal bitrates (bytes/second), lowest first."""
        return [rep.level.bitrate for rep in self.representations]

    def level(self, index: int) -> QualityLevel:
        if not 0 <= index < self.num_levels:
            raise IndexError(f"level {index} out of range "
                             f"(0..{self.num_levels - 1})")
        return self.representations[index].level

    def chunk_url(self, level: int, index: int) -> str:
        if not 0 <= index < self.num_chunks:
            raise IndexError(f"chunk {index} out of range "
                             f"(0..{self.num_chunks - 1})")
        template = self.representations[level].url_template
        return template.replace("$Number$", str(index))

    def chunk_size(self, level: int, index: int) -> float:
        """Chunk size from the manifest; only if sizes were included."""
        if self._sizes is None:
            raise LookupError(
                "manifest does not carry chunk sizes; read Content-Length "
                "from the HTTP response instead")
        return self._sizes[level][index]

    def __repr__(self) -> str:
        return (f"<Manifest {self.video_name!r} levels={self.num_levels} "
                f"chunks={self.num_chunks} sizes={self.sizes_included}>")
