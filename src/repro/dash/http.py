"""Minimal HTTP request/response model over the MPTCP transport.

DASH is plain HTTP GETs; what the rest of the system needs from HTTP is
(1) request/response framing over the simulated connection and (2) the
Content-Length header, which is where MP-DASH learns each chunk's size in
deployments whose manifests omit sizes (§5.1).

Responses are modeled as one :class:`~repro.mptcp.connection.Transfer` of
``Content-Length`` bytes; header overhead is negligible next to video
payloads and is ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..mptcp.connection import MptcpConnection, Transfer
from ..obs.events import HttpRequestSent, HttpResponseReceived


@dataclass(frozen=True)
class HttpRequest:
    """A GET for one resource."""

    path: str
    headers: Dict[str, str] = field(default_factory=dict)


@dataclass
class HttpResponse:
    """Response metadata plus the transfer that carried the body."""

    request: HttpRequest
    status: int
    headers: Dict[str, str]
    transfer: Optional[Transfer] = None

    @property
    def content_length(self) -> int:
        return int(self.headers.get("Content-Length", "0"))

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class HttpClient:
    """Issues GETs for a resource resolver over one MPTCP connection."""

    def __init__(self, connection: MptcpConnection,
                 resolver: Callable[[str], Optional[float]],
                 fetcher: Optional[Callable[..., Transfer]] = None):
        """``resolver`` maps a request path to the body size in bytes, or
        None for a 404.  ``fetcher`` overrides how body transfers are
        issued (default: directly on the connection); a TCP-splitting
        proxy's ``fetch`` slots in here to put an unmodified origin server
        behind the multipath leg."""
        self.connection = connection
        self._resolver = resolver
        self._fetcher = (fetcher if fetcher is not None
                         else connection.start_transfer)
        self.requests_sent = 0

    def get(self, path: str,
            on_complete: Callable[[HttpResponse], None],
            before_transfer: Optional[Callable[[HttpResponse], None]] = None
            ) -> HttpResponse:
        """GET ``path``; ``on_complete`` fires when the body has arrived.

        ``before_transfer`` runs after the response size is known but before
        the body transfer is issued — the window where the MP-DASH adapter
        reads Content-Length and arms the scheduler for exactly that many
        bytes.
        """
        self.requests_sent += 1
        request_id = self.requests_sent
        bus = self.connection.bus
        sim = self.connection.sim
        request = HttpRequest(path)
        bus.publish(HttpRequestSent(sim.now, path, request_id))
        size = self._resolver(path)
        if size is None:
            response = HttpResponse(request, 404, {"Content-Length": "0"})
            bus.publish(HttpResponseReceived(sim.now, path, 404, 0,
                                             request_id))
            on_complete(response)
            return response
        body_bytes = int(round(size))
        response = HttpResponse(
            request, 200, {"Content-Length": str(body_bytes)})
        if before_transfer is not None:
            before_transfer(response)

        def _done(_transfer: Transfer) -> None:
            bus.publish(HttpResponseReceived(sim.now, path, 200, body_bytes,
                                             request_id))
            on_complete(response)

        response.transfer = self._fetcher(body_bytes, tag=path,
                                          on_complete=_done)
        return response
