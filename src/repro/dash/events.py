"""Player event log and per-chunk records.

The paper's analysis tool correlates a network packet trace with "a
player's event logs" (§6).  This module is the player half of that input:
typed events with timestamps, plus a structured per-chunk record carrying
everything the analyzer and the Figure-8 visualization need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Event kinds.
REQUEST = "request"
DOWNLOADED = "downloaded"
PLAY_START = "play_start"
STALL_START = "stall_start"
STALL_END = "stall_end"
QUALITY_SWITCH = "quality_switch"
PLAYBACK_END = "playback_end"
MPDASH_ARMED = "mpdash_armed"
MPDASH_SKIPPED = "mpdash_skipped"


@dataclass(frozen=True)
class PlayerEvent:
    """One timestamped player event."""

    time: float
    kind: str
    detail: Dict[str, float] = field(default_factory=dict)


@dataclass
class ChunkRecord:
    """Everything known about one downloaded chunk."""

    index: int
    level: int
    size: float
    duration: float
    requested_at: float
    completed_at: float
    #: Player-observed throughput for this chunk (bytes/second).
    throughput: float
    #: Bytes carried per path name (from the transport).
    bytes_per_path: Dict[str, float] = field(default_factory=dict)
    #: Deadline window armed for this chunk; None when MP-DASH was off.
    deadline: Optional[float] = None
    #: Buffer occupancy when the chunk was requested.
    buffer_at_request: float = 0.0

    @property
    def download_time(self) -> float:
        return self.completed_at - self.requested_at

    def fraction_on(self, path: str) -> float:
        total = sum(self.bytes_per_path.values())
        if total <= 0:
            return 0.0
        return self.bytes_per_path.get(path, 0.0) / total


@dataclass(frozen=True)
class StallRecord:
    """One rebuffering interval."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class PlayerEventLog:
    """Append-only event log with typed accessors."""

    def __init__(self) -> None:
        self.events: List[PlayerEvent] = []
        self.chunks: List[ChunkRecord] = []
        self.stalls: List[StallRecord] = []
        self._open_stall: Optional[float] = None

    def record(self, time: float, kind: str, **detail: float) -> None:
        self.events.append(PlayerEvent(time, kind, detail))
        if kind == STALL_START:
            self._open_stall = time
        elif kind == STALL_END:
            if self._open_stall is None:
                raise ValueError("stall_end without stall_start")
            self.stalls.append(StallRecord(self._open_stall, time))
            self._open_stall = None

    def record_chunk(self, record: ChunkRecord) -> None:
        self.chunks.append(record)

    def close(self, time: float) -> None:
        """Close any open stall at end of session."""
        if self._open_stall is not None:
            self.stalls.append(StallRecord(self._open_stall, time))
            self._open_stall = None

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[PlayerEvent]:
        return [e for e in self.events if e.kind == kind]

    @property
    def stall_count(self) -> int:
        return len(self.stalls)

    @property
    def total_stall_time(self) -> float:
        return sum(s.duration for s in self.stalls)

    def quality_switches(self) -> int:
        """Number of level changes between consecutive chunks."""
        return sum(1 for a, b in zip(self.chunks, self.chunks[1:])
                   if a.level != b.level)

    def __repr__(self) -> str:
        return (f"<PlayerEventLog events={len(self.events)} "
                f"chunks={len(self.chunks)} stalls={len(self.stalls)}>")
