"""Player event log and per-chunk records.

The paper's analysis tool correlates a network packet trace with "a
player's event logs" (§6).  This module is the player half of that input:
typed events with timestamps, plus a structured per-chunk record carrying
everything the analyzer and the Figure-8 visualization need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import events as obs_events
from ..obs.bus import EventBus

# Event kinds.
REQUEST = "request"
DOWNLOADED = "downloaded"
PLAY_START = "play_start"
STALL_START = "stall_start"
STALL_END = "stall_end"
QUALITY_SWITCH = "quality_switch"
PLAYBACK_END = "playback_end"
MPDASH_ARMED = "mpdash_armed"
MPDASH_SKIPPED = "mpdash_skipped"


@dataclass(frozen=True)
class PlayerEvent:
    """One timestamped player event."""

    time: float
    kind: str
    detail: Dict[str, float] = field(default_factory=dict)


@dataclass
class ChunkRecord:
    """Everything known about one downloaded chunk."""

    index: int
    level: int
    size: float
    duration: float
    requested_at: float
    completed_at: float
    #: Player-observed throughput for this chunk (bytes/second).
    throughput: float
    #: Bytes carried per path name (from the transport).
    bytes_per_path: Dict[str, float] = field(default_factory=dict)
    #: Deadline window armed for this chunk; None when MP-DASH was off.
    deadline: Optional[float] = None
    #: Buffer occupancy when the chunk was requested.
    buffer_at_request: float = 0.0

    @property
    def download_time(self) -> float:
        return self.completed_at - self.requested_at

    def fraction_on(self, path: str) -> float:
        total = sum(self.bytes_per_path.values())
        if total <= 0:
            return 0.0
        return self.bytes_per_path.get(path, 0.0) / total


@dataclass(frozen=True)
class StallRecord:
    """One rebuffering interval."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class PlayerEventLog:
    """Append-only event log with typed accessors.

    Either fed directly through :meth:`record`/:meth:`record_chunk`, or
    attached to the session bus with :meth:`attach`, where it rebuilds the
    same entries from the player's typed events — which is how both the
    live player log and the offline trace-replay log are produced.
    """

    def __init__(self) -> None:
        self.events: List[PlayerEvent] = []
        self.chunks: List[ChunkRecord] = []
        self.stalls: List[StallRecord] = []
        self._open_stall: Optional[float] = None

    def attach(self, bus: EventBus) -> None:
        """Subscribe to the player-layer events on ``bus``."""
        ev = obs_events
        bus.subscribe(ev.ChunkRequested, lambda e: self.record(
            e.time, REQUEST, index=e.index, level=e.level))
        bus.subscribe(ev.MpDashArmed, lambda e: self.record(
            e.time, MPDASH_ARMED, index=e.index, deadline=e.deadline))
        bus.subscribe(ev.MpDashSkipped, lambda e: self.record(
            e.time, MPDASH_SKIPPED, index=e.index, deadline=-1.0))
        bus.subscribe(ev.QualitySwitched, lambda e: self.record(
            e.time, QUALITY_SWITCH, from_level=e.from_level,
            to_level=e.to_level))
        bus.subscribe(ev.ChunkDownloaded, self._on_chunk_downloaded)
        bus.subscribe(ev.PlaybackStarted,
                      lambda e: self.record(e.time, PLAY_START))
        bus.subscribe(ev.StallStart,
                      lambda e: self.record(e.time, STALL_START))
        bus.subscribe(ev.StallEnd, lambda e: self.record(e.time, STALL_END))
        bus.subscribe(ev.PlaybackEnded, self._on_playback_ended)
        bus.subscribe(ev.SessionClosed, lambda e: self.close(e.time))

    def _on_chunk_downloaded(self, event: "obs_events.ChunkDownloaded"
                             ) -> None:
        self.record(event.time, DOWNLOADED, index=event.index,
                    level=event.level, size=event.size)
        self.record_chunk(ChunkRecord(
            index=event.index, level=event.level, size=event.size,
            duration=event.duration, requested_at=event.requested_at,
            completed_at=event.time, throughput=event.throughput,
            bytes_per_path=dict(event.bytes_per_path),
            deadline=event.deadline,
            buffer_at_request=event.buffer_at_request))

    def _on_playback_ended(self, event: "obs_events.PlaybackEnded") -> None:
        self.record(event.time, PLAYBACK_END)
        self.close(event.time)

    def record(self, time: float, kind: str, **detail: float) -> None:
        self.events.append(PlayerEvent(time, kind, detail))
        if kind == STALL_START:
            self._open_stall = time
        elif kind == STALL_END:
            if self._open_stall is None:
                raise ValueError("stall_end without stall_start")
            self.stalls.append(StallRecord(self._open_stall, time))
            self._open_stall = None

    def record_chunk(self, record: ChunkRecord) -> None:
        self.chunks.append(record)

    def close(self, time: float) -> None:
        """Close any open stall at end of session."""
        if self._open_stall is not None:
            self.stalls.append(StallRecord(self._open_stall, time))
            self._open_stall = None

    # ------------------------------------------------------------------
    def of_kind(self, kind: str) -> List[PlayerEvent]:
        return [e for e in self.events if e.kind == kind]

    @property
    def stall_count(self) -> int:
        return len(self.stalls)

    @property
    def total_stall_time(self) -> float:
        return sum(s.duration for s in self.stalls)

    def quality_switches(self) -> int:
        """Number of level changes between consecutive chunks."""
        return sum(1 for a, b in zip(self.chunks, self.chunks[1:])
                   if a.level != b.level)

    def __repr__(self) -> str:
        return (f"<PlayerEventLog events={len(self.events)} "
                f"chunks={len(self.chunks)} stalls={len(self.stalls)}>")
