"""Cross-layer analysis: metrics, the video analyzer, CDFs, text figures."""

from .analyzer import ChunkView, IdleGap, MultipathVideoAnalyzer
from .cdf import (empirical_cdf, fraction_at_most, percentile,
                  quartile_summary)
from .qoe import QoeScore, qoe_from_bitrates, qoe_of, session_qoe
from .report import session_report
from .metrics import (SessionMetrics, bitrate_reduction, compute_metrics,
                      path_utilization, savings)
from .visualize import (NUM_LEVELS, ChunkCell, chunk_cells, chunk_timeline,
                        sparkline, throughput_plot)

__all__ = [
    "NUM_LEVELS",
    "ChunkCell", "ChunkView", "IdleGap", "MultipathVideoAnalyzer",
    "QoeScore", "SessionMetrics", "qoe_from_bitrates", "qoe_of",
    "session_qoe", "bitrate_reduction", "chunk_cells", "chunk_timeline",
    "compute_metrics", "empirical_cdf", "fraction_at_most",
    "path_utilization", "percentile", "quartile_summary", "savings",
    "session_report", "sparkline", "throughput_plot",
]
