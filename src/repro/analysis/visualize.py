"""Renderings of the paper's figures: shared geometry + text output.

The original analysis tool visualizes sessions graphically (Figure 8: one
bar per chunk, bar height = size, width = download duration, color =
quality level, black fill = cellular fraction).  This module holds the
shared **figure geometry** — :class:`ChunkCell` maps a
:class:`~repro.analysis.analyzer.ChunkView` to level/height/fill once,
so the terminal strip here and the SVG chunk strip in
:mod:`repro.obs.report` cannot drift apart — plus the terminal
renderings used by the benchmark harness:

* :func:`chunk_cells` — the Figure-8 geometry, one cell per chunk,
* :func:`chunk_timeline` — the text Figure-8 chunk strip,
* :func:`throughput_plot` — ASCII strip charts for the per-path throughput
  figures (1, 6, 11),
* :func:`sparkline` — compact single-line series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .analyzer import ChunkView

#: Quality level glyphs, level 0 (lowest) upward.
_LEVEL_GLYPHS = "▁▂▄▆█"
_SPARK_GLYPHS = " ▁▂▃▄▅▆▇█"

#: Number of quality levels the figure geometry distinguishes; higher
#: levels are clamped to the top band (matches the glyph strip).
NUM_LEVELS = len(_LEVEL_GLYPHS)


@dataclass(frozen=True)
class ChunkCell:
    """One chunk of the Figure-8 strip, reduced to figure geometry.

    Both renderers consume this: the text strip draws
    ``glyph + marker``, the SVG strip draws a bar of
    :attr:`height_fraction` over ``[start, end]`` with a dark overlay of
    :attr:`cellular_fraction`.  ``level`` is already clamped to the
    ``NUM_LEVELS`` bands.
    """

    index: int
    level: int
    tenths: int
    start: float
    end: float
    size: float
    cellular_fraction: float

    @property
    def glyph(self) -> str:
        """Quality-level glyph for the text strip."""
        return _LEVEL_GLYPHS[self.level]

    @property
    def marker(self) -> str:
        """Cellular-share digit: ``.`` for none, tenths capped at 9."""
        return "." if self.tenths == 0 else str(min(self.tenths, 9))

    @property
    def height_fraction(self) -> float:
        """Bar height as a fraction of the plot, one band per level."""
        return (self.level + 1) / NUM_LEVELS

    @property
    def duration(self) -> float:
        return self.end - self.start


def chunk_cells(chunks: Sequence[ChunkView]) -> List[ChunkCell]:
    """Map analyzer chunk views to Figure-8 cells (the shared geometry)."""
    return [
        ChunkCell(
            index=chunk.index,
            level=min(chunk.level, NUM_LEVELS - 1),
            tenths=int(round(chunk.cellular_fraction * 10)),
            start=chunk.start,
            end=chunk.end,
            size=chunk.size,
            cellular_fraction=chunk.cellular_fraction,
        )
        for chunk in chunks
    ]


def chunk_timeline(chunks: Sequence[ChunkView], width: int = 100) -> str:
    """Figure-8-style strip: one column group per chunk.

    Each chunk renders as ``<level glyph><cellular digit>`` where the digit
    is the cellular byte share in tenths (``.`` for zero, ``9`` for >90%);
    e.g. ``█.`` is a top-quality chunk fetched entirely over WiFi and
    ``▄7`` a mid-quality chunk with ~70% of bytes on cellular.
    """
    if width < 10:
        raise ValueError(f"width too small: {width!r}")
    cells = [cell.glyph + cell.marker for cell in chunk_cells(chunks)]
    lines: List[str] = []
    per_line = max(1, width // 2)
    for i in range(0, len(cells), per_line):
        lines.append("".join(cells[i:i + per_line]))
    legend = ("levels: " + " ".join(
        f"{glyph}=L{idx + 1}" for idx, glyph in enumerate(_LEVEL_GLYPHS))
        + " | digit = cellular tenths (. = none)")
    return "\n".join(lines + [legend])


def sparkline(values: Sequence[float],
              maximum: Optional[float] = None) -> str:
    """One-line bar chart of a non-negative series."""
    if not values:
        return ""
    peak = maximum if maximum is not None else max(values)
    if peak <= 0:
        return " " * len(values)
    glyphs: List[str] = []
    for value in values:
        idx = int(round(min(value, peak) / peak * (len(_SPARK_GLYPHS) - 1)))
        glyphs.append(_SPARK_GLYPHS[idx])
    return "".join(glyphs)


def throughput_plot(series: Sequence[Tuple[str, Sequence[float]]],
                    interval: float, width: int = 100,
                    unit_scale: float = 8.0 / 1e6,
                    unit_label: str = "Mbps") -> str:
    """Multi-row strip chart, one labelled sparkline per named series.

    ``series`` is ``[(label, values_bytes_per_second), ...]``; values are
    downsampled to ``width`` columns and scaled by ``unit_scale`` for the
    peak annotation.
    """
    if width < 10:
        raise ValueError(f"width too small: {width!r}")
    rows: List[str] = []
    peak = max((max(values) if len(values) else 0.0)
               for _, values in series) if series else 0.0
    for label, values in series:
        values = list(values)
        if len(values) > width:
            bucket = len(values) / width
            values = [max(values[int(i * bucket):
                                 max(int(i * bucket) + 1,
                                     int((i + 1) * bucket))])
                      for i in range(width)]
        line = sparkline(values, maximum=peak)
        mean = (sum(values) / len(values)) if values else 0.0
        rows.append(f"{label:>10} |{line}| "
                    f"mean={mean * unit_scale:.2f}{unit_label}")
    span = len(list(series[0][1])) * interval if series else 0.0
    rows.append(f"{'':>10}  0s .. {span:.0f}s   "
                f"(peak {peak * unit_scale:.2f}{unit_label})")
    return "\n".join(rows)
