"""Text renderings of the paper's figures.

The original analysis tool visualizes sessions graphically (Figure 8: one
bar per chunk, bar height = size, width = download duration, color =
quality level, black fill = cellular fraction).  These functions produce
the terminal equivalents used by the benchmark harness:

* :func:`chunk_timeline` — the Figure-8 chunk strip,
* :func:`throughput_plot` — ASCII strip charts for the per-path throughput
  figures (1, 6, 11),
* :func:`sparkline` — compact single-line series.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .analyzer import ChunkView

#: Quality level glyphs, level 0 (lowest) upward.
_LEVEL_GLYPHS = "▁▂▄▆█"
_SPARK_GLYPHS = " ▁▂▃▄▅▆▇█"


def _level_glyph(level: int) -> str:
    return _LEVEL_GLYPHS[min(level, len(_LEVEL_GLYPHS) - 1)]


def chunk_timeline(chunks: Sequence[ChunkView], width: int = 100) -> str:
    """Figure-8-style strip: one column group per chunk.

    Each chunk renders as ``<level glyph><cellular digit>`` where the digit
    is the cellular byte share in tenths (``.`` for zero, ``9`` for >90%);
    e.g. ``█.`` is a top-quality chunk fetched entirely over WiFi and
    ``▄7`` a mid-quality chunk with ~70% of bytes on cellular.
    """
    if width < 10:
        raise ValueError(f"width too small: {width!r}")
    cells: List[str] = []
    for chunk in chunks:
        tenth = int(round(chunk.cellular_fraction * 10))
        marker = "." if tenth == 0 else str(min(tenth, 9))
        cells.append(_level_glyph(chunk.level) + marker)
    lines = []
    per_line = max(1, width // 2)
    for i in range(0, len(cells), per_line):
        lines.append("".join(cells[i:i + per_line]))
    legend = ("levels: " + " ".join(
        f"{glyph}=L{idx + 1}" for idx, glyph in enumerate(_LEVEL_GLYPHS))
        + " | digit = cellular tenths (. = none)")
    return "\n".join(lines + [legend])


def sparkline(values: Sequence[float], maximum: float = None) -> str:
    """One-line bar chart of a non-negative series."""
    if not values:
        return ""
    peak = maximum if maximum is not None else max(values)
    if peak <= 0:
        return " " * len(values)
    glyphs = []
    for value in values:
        idx = int(round(min(value, peak) / peak * (len(_SPARK_GLYPHS) - 1)))
        glyphs.append(_SPARK_GLYPHS[idx])
    return "".join(glyphs)


def throughput_plot(series: Sequence[Tuple[str, Sequence[float]]],
                    interval: float, width: int = 100,
                    unit_scale: float = 8.0 / 1e6,
                    unit_label: str = "Mbps") -> str:
    """Multi-row strip chart, one labelled sparkline per named series.

    ``series`` is ``[(label, values_bytes_per_second), ...]``; values are
    downsampled to ``width`` columns and scaled by ``unit_scale`` for the
    peak annotation.
    """
    if width < 10:
        raise ValueError(f"width too small: {width!r}")
    rows = []
    peak = max((max(values) if len(values) else 0.0)
               for _, values in series)
    for label, values in series:
        values = list(values)
        if len(values) > width:
            bucket = len(values) / width
            values = [max(values[int(i * bucket):
                                 max(int(i * bucket) + 1,
                                     int((i + 1) * bucket))])
                      for i in range(width)]
        line = sparkline(values, maximum=peak)
        mean = (sum(values) / len(values)) if values else 0.0
        rows.append(f"{label:>10} |{line}| "
                    f"mean={mean * unit_scale:.2f}{unit_label}")
    span = len(list(series[0][1])) * interval if series else 0.0
    rows.append(f"{'':>10}  0s .. {span:.0f}s   "
                f"(peak {peak * unit_scale:.2f}{unit_label})")
    return "\n".join(rows)
