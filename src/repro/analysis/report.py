"""Full-session text reports.

Combines everything the analysis tool knows about one streaming session —
QoE metrics, resource usage, scheduler statistics, per-path utilization,
the Figure-8 chunk strip, and the per-path throughput patterns — into one
human-readable report.  This is the programmatic face of the paper's
multipath video analysis tool; the CLI's ``stream --visualize`` prints it.
"""

from __future__ import annotations

from typing import List, Optional

from ..experiments.tables import format_table, pct
from .visualize import chunk_timeline, throughput_plot


def session_report(result, pattern_window: Optional[float] = 120.0,
                   width: int = 100) -> str:
    """Render a :class:`~repro.experiments.runner.SessionResult`.

    ``pattern_window`` bounds the throughput-pattern plots (None = whole
    session; long sessions downsample anyway).
    """
    metrics = result.metrics
    analyzer = result.analyzer
    sections: List[str] = []

    config = result.config
    mode = (f"MP-DASH ({config.deadline_mode})" if config.mpdash
            else "vanilla MPTCP")
    sections.append(
        f"Session: {config.video} / {config.abr} / {mode}, "
        f"{result.session_duration:.0f}s simulated, "
        f"{'finished' if result.finished else 'TIMED OUT'}")

    rows = [
        ["cellular data", f"{metrics.cellular_bytes / 1e6:.2f} MB "
         f"({pct(metrics.cellular_fraction)})"],
        ["wifi data", f"{metrics.wifi_bytes / 1e6:.2f} MB"],
        ["radio energy", f"{metrics.radio_energy:.1f} J "
         f"(cellular {metrics.cellular_energy:.1f} J)"],
        ["playback bitrate", f"{metrics.mean_bitrate_mbps:.2f} Mbps"],
        ["quality switches", metrics.quality_switches],
        ["stalls", f"{metrics.stall_count} "
         f"({metrics.total_stall_time:.1f}s)"],
        ["startup delay", f"{metrics.startup_delay:.2f}s"
         if metrics.startup_delay is not None else "-"],
    ]
    utilization = analyzer.utilization()
    for path in sorted(utilization):
        rows.append([f"{path} utilization", pct(utilization[path])])
    stats = result.scheduler_stats
    if stats:
        rows.append(["MP-DASH activations", stats["activations"]])
        rows.append(["deadline misses", stats["deadline_misses"]])
    sections.append(format_table(["metric", "value"], rows))

    views = analyzer.chunk_views()
    if views:
        sections.append("Chunk strip (Figure-8 view):")
        sections.append(chunk_timeline(views, width=width))

    horizon = (min(pattern_window, result.session_duration)
               if pattern_window is not None else result.session_duration)
    series = []
    for path in analyzer.activity.paths():
        _times, values = analyzer.throughput_timeline(path, until=horizon)
        series.append((path, values))
    if series:
        sections.append(f"Throughput patterns (first {horizon:.0f}s):")
        sections.append(throughput_plot(
            series, interval=analyzer.activity.bin_width, width=width))

    gaps = analyzer.idle_gaps(min_duration=1.0)
    idle_total = sum(g.duration for g in gaps)
    sections.append(f"Idle gaps >= 1s: {len(gaps)} "
                    f"totalling {idle_total:.1f}s")
    return "\n\n".join(sections)
