"""Composite QoE scoring (the §5.2.2 future-work item).

The paper evaluates QoE through its components — stalls, playback bitrate,
switches — and defers a combined metric to future work.  This module
implements the standard combination from the MPC line of work (Yin et al.,
SIGCOMM 2015), which the paper already cites for rate adaptation:

    QoE = Σ q(R_k)  −  λ Σ |q(R_{k+1}) − q(R_k)|  −  μ · T_rebuffer
          − μ_s · T_startup

with ``q`` the bitrate in Mbps, λ the smoothness penalty, μ the rebuffer
penalty (Mbps-seconds per second stalled), and a startup term.  Scores are
reported both as totals and per-chunk averages so sessions of different
lengths compare.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..dash.events import PlayerEventLog
from .metrics import SessionMetrics

#: Default penalties from the robust-MPC evaluation: one unit of bitrate
#: per unit of switch magnitude, a heavy toll on rebuffering, a light one
#: on startup delay.
DEFAULT_SWITCH_PENALTY = 1.0
DEFAULT_REBUFFER_PENALTY = 8.0
DEFAULT_STARTUP_PENALTY = 1.0


@dataclass(frozen=True)
class QoeScore:
    """Decomposed QoE for one session."""

    quality: float
    switch_penalty: float
    rebuffer_penalty: float
    startup_penalty: float
    chunk_count: int

    @property
    def total(self) -> float:
        return (self.quality - self.switch_penalty - self.rebuffer_penalty
                - self.startup_penalty)

    @property
    def per_chunk(self) -> float:
        if self.chunk_count == 0:
            return 0.0
        return self.total / self.chunk_count

    def __repr__(self) -> str:
        return (f"<QoeScore total={self.total:.1f} "
                f"(quality={self.quality:.1f} -switch="
                f"{self.switch_penalty:.1f} -rebuf="
                f"{self.rebuffer_penalty:.1f} -startup="
                f"{self.startup_penalty:.1f})>")


def qoe_from_bitrates(bitrates_mbps: Sequence[float],
                      rebuffer_seconds: float = 0.0,
                      startup_seconds: float = 0.0,
                      switch_penalty: float = DEFAULT_SWITCH_PENALTY,
                      rebuffer_penalty: float = DEFAULT_REBUFFER_PENALTY,
                      startup_penalty: float = DEFAULT_STARTUP_PENALTY
                      ) -> QoeScore:
    """Score a session given its per-chunk bitrates (Mbps) and stall time."""
    if rebuffer_seconds < 0:
        raise ValueError(
            f"rebuffer time cannot be negative: {rebuffer_seconds!r}")
    if startup_seconds < 0:
        raise ValueError(
            f"startup time cannot be negative: {startup_seconds!r}")
    quality = float(sum(bitrates_mbps))
    switches = sum(abs(b - a)
                   for a, b in zip(bitrates_mbps, bitrates_mbps[1:]))
    return QoeScore(
        quality=quality,
        switch_penalty=switch_penalty * switches,
        rebuffer_penalty=rebuffer_penalty * rebuffer_seconds,
        startup_penalty=startup_penalty * startup_seconds,
        chunk_count=len(bitrates_mbps))


def session_qoe(log: PlayerEventLog, manifest_bitrates: Sequence[float],
                startup_delay: Optional[float] = None,
                **penalties) -> QoeScore:
    """Score a finished session from its player event log.

    ``manifest_bitrates`` maps level index to nominal bitrate
    (bytes/second); per-chunk quality uses the nominal ladder (the
    perceptual quantity), not the VBR chunk size.
    """
    bitrates = [manifest_bitrates[c.level] * 8.0 / 1e6 for c in log.chunks]
    return qoe_from_bitrates(
        bitrates, rebuffer_seconds=log.total_stall_time,
        startup_seconds=startup_delay if startup_delay is not None else 0.0,
        **penalties)


def qoe_of(metrics: SessionMetrics, ladder_bytes_per_s: Sequence[float],
           **penalties) -> QoeScore:
    """Score from :class:`SessionMetrics` plus the encoding ladder.

    The metrics record each played chunk's level index; the ladder maps
    those back to nominal bitrates.
    """
    bitrates = [ladder_bytes_per_s[level] * 8.0 / 1e6
                for level in metrics.levels]
    return qoe_from_bitrates(
        bitrates, rebuffer_seconds=metrics.total_stall_time,
        startup_seconds=metrics.startup_delay or 0.0, **penalties)
