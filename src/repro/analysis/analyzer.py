"""The Multipath Video Analysis Tool (§6).

The paper builds a ~3,000-line C++ tool that takes a network packet trace
and a player event log, correlates them across protocol layers (MPTCP,
HTTP, DASH), and reports path utilization, rebuffering, quality switches,
and energy — plus the Figure-8 chunk visualization.

This is the same tool over the simulator's equivalents of those inputs:
the transport :class:`~repro.mptcp.activity.ActivityLog` (the packet trace)
and the :class:`~repro.dash.events.PlayerEventLog` (the event log).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dash.events import PlayerEventLog
from ..energy.devices import DevicePowerProfile, GALAXY_NOTE
from ..energy.model import session_energy, session_radio_events
from ..mptcp.activity import ActivityLog
from ..net.link import CELLULAR
from ..obs.events import RadioStateChange
from .metrics import SessionMetrics, compute_metrics, path_utilization


@dataclass
class ChunkView:
    """One chunk as the Figure-8 visualization renders it."""

    index: int
    level: int
    start: float
    end: float
    size: float
    cellular_fraction: float


@dataclass
class IdleGap:
    """A period where the connection moved no bytes (player buffer full)."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class MultipathVideoAnalyzer:
    """Correlates transport activity with the player's event log."""

    def __init__(self, activity: ActivityLog, log: PlayerEventLog,
                 session_duration: float,
                 device: DevicePowerProfile = GALAXY_NOTE):
        if session_duration <= 0:
            raise ValueError(
                f"session_duration must be positive: {session_duration!r}")
        self.activity = activity
        self.log = log
        self.session_duration = session_duration
        self.device = device

    @classmethod
    def from_trace(cls, trace, device: Optional[DevicePowerProfile] = None
                   ) -> "MultipathVideoAnalyzer":
        """Rebuild the analyzer offline from an exported JSONL trace.

        ``trace`` is a :class:`repro.obs.trace_export.Trace` (as returned
        by ``load_jsonl``): the event stream is replayed into fresh
        bus-subscribed logs, so the offline analyzer sees exactly what the
        live one did.
        """
        from ..obs.trace_export import analyzer_from_trace

        return analyzer_from_trace(trace, device)

    # ------------------------------------------------------------------
    def metrics(self, steady_state_fraction: float = 0.0) -> SessionMetrics:
        energy = session_energy(self.activity, self.device,
                                self.session_duration)
        return compute_metrics(self.log, energy, self.session_duration,
                               steady_state_fraction)

    def chunk_views(self) -> List[ChunkView]:
        """Per-chunk download windows with their cellular byte fraction."""
        return [
            ChunkView(index=c.index, level=c.level, start=c.requested_at,
                      end=c.completed_at, size=c.size,
                      cellular_fraction=c.fraction_on(CELLULAR))
            for c in self.log.chunks
        ]

    def idle_gaps(self, min_duration: float = 0.5) -> List[IdleGap]:
        """Network-idle periods longer than ``min_duration`` seconds."""
        busy: List[Tuple[float, float]] = []
        for path in self.activity.paths():
            busy.extend(self.activity.active_windows(path, idle_threshold=0.0))
        if not busy:
            return [IdleGap(0.0, self.session_duration)]
        busy.sort()
        merged = [list(busy[0])]
        for start, end in busy[1:]:
            if start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        gaps: List[IdleGap] = []
        cursor = 0.0
        for start, end in merged:
            if start - cursor >= min_duration:
                gaps.append(IdleGap(cursor, start))
            cursor = max(cursor, end)
        if self.session_duration - cursor >= min_duration:
            gaps.append(IdleGap(cursor, self.session_duration))
        return gaps

    def radio_timeline(self) -> List[RadioStateChange]:
        """Every interface's idle/active/tail transitions, time-ordered —
        the energy model's view of the session as typed events."""
        return session_radio_events(self.activity, self.device,
                                    self.session_duration)

    def utilization(self) -> Dict[str, float]:
        """Per-path fraction of session time with data on the wire."""
        return {path: path_utilization(self.activity, path,
                                       self.session_duration)
                for path in self.activity.paths()}

    def throughput_timeline(self, path: str,
                            until: Optional[float] = None
                            ) -> Tuple[List[float], List[float]]:
        """(times, bytes/second) series for one path."""
        horizon = until if until is not None else self.session_duration
        return self.activity.throughput_series(path, until=horizon)

    def aggregate_timeline(self, until: Optional[float] = None
                           ) -> Tuple[List[float], List[float]]:
        """(times, bytes/second) of the whole MPTCP connection."""
        horizon = until if until is not None else self.session_duration
        combined: Optional[List[float]] = None
        times: List[float] = []
        for path in self.activity.paths():
            times, series = self.activity.throughput_series(path,
                                                            until=horizon)
            if combined is None:
                combined = list(series)
            else:
                combined = [a + b for a, b in zip(combined, series)]
        return times, (combined if combined is not None else [])
