"""Empirical CDF helpers for the field-study figures (Figures 9 and 10)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def empirical_cdf(values: Sequence[float]) -> Tuple[List[float], List[float]]:
    """Sorted values and their cumulative probabilities in (0, 1]."""
    if not values:
        raise ValueError("cannot build a CDF from no values")
    ordered = sorted(values)
    n = len(ordered)
    return ordered, [(i + 1) / n for i in range(n)]


def percentile(values: Sequence[float], p: float) -> float:
    """The p-th percentile (0 <= p <= 100), linear interpolation."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100]: {p!r}")
    return float(np.percentile(np.asarray(values, dtype=float), p))


def quartile_summary(values: Sequence[float]) -> Tuple[float, float, float]:
    """(25th, 50th, 75th) percentiles — the format Figure 9 is quoted in."""
    return (percentile(values, 25), percentile(values, 50),
            percentile(values, 75))


def fraction_at_most(values: Sequence[float], threshold: float) -> float:
    """CDF evaluated at ``threshold``."""
    if not values:
        raise ValueError("cannot evaluate a CDF of no values")
    return sum(1 for v in values if v <= threshold) / len(values)
