"""QoE and resource metrics for one streaming session.

The four evaluation metrics of §7.3: number of stalls, playback bitrate,
cellular data usage, and radio energy consumption — plus the supporting
statistics the analysis tool reports (quality switches, startup delay,
per-path utilization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dash.events import PlayerEventLog, PLAY_START
from ..energy.model import EnergyBreakdown
from ..mptcp.activity import ActivityLog
from ..net.link import CELLULAR, WIFI


@dataclass
class SessionMetrics:
    """Everything the evaluation tables report about one session."""

    bytes_per_path: Dict[str, float] = field(default_factory=dict)
    energy_per_path: Dict[str, float] = field(default_factory=dict)
    energy_total: float = 0.0
    stall_count: int = 0
    total_stall_time: float = 0.0
    quality_switches: int = 0
    #: Mean nominal bitrate of played chunks (bytes/second).
    mean_bitrate: float = 0.0
    #: Per-chunk level indices, in playback order.
    levels: List[int] = field(default_factory=list)
    startup_delay: Optional[float] = None
    session_duration: float = 0.0
    chunk_count: int = 0

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes_per_path.values())

    @property
    def cellular_bytes(self) -> float:
        return self.bytes_per_path.get(CELLULAR, 0.0)

    @property
    def wifi_bytes(self) -> float:
        return self.bytes_per_path.get(WIFI, 0.0)

    @property
    def cellular_fraction(self) -> float:
        total = self.total_bytes
        if total <= 0:
            return 0.0
        return self.cellular_bytes / total

    @property
    def mean_bitrate_mbps(self) -> float:
        return self.mean_bitrate * 8.0 / 1e6

    @property
    def cellular_energy(self) -> float:
        return self.energy_per_path.get(CELLULAR, 0.0)

    @property
    def radio_energy(self) -> float:
        """Total radio energy (both interfaces), joules."""
        return self.energy_total


def compute_metrics(log: PlayerEventLog,
                    energy: Dict[str, EnergyBreakdown],
                    session_duration: float,
                    steady_state_fraction: float = 0.0) -> SessionMetrics:
    """Derive :class:`SessionMetrics` from the player log and energy.

    ``steady_state_fraction`` drops the first fraction of chunks, matching
    the paper's reporting over "the last 80% chunks, when the player is in
    its steady state" (pass 0.2 for that).
    """
    if not 0 <= steady_state_fraction < 1:
        raise ValueError(
            f"steady_state_fraction must be in [0, 1): "
            f"{steady_state_fraction!r}")
    chunks = log.chunks
    skip = int(len(chunks) * steady_state_fraction)
    kept = chunks[skip:]

    metrics = SessionMetrics(session_duration=session_duration,
                             chunk_count=len(kept))
    for chunk in kept:
        for path, num_bytes in chunk.bytes_per_path.items():
            metrics.bytes_per_path[path] = (
                metrics.bytes_per_path.get(path, 0.0) + num_bytes)
        metrics.levels.append(chunk.level)

    metrics.stall_count = log.stall_count
    metrics.total_stall_time = log.total_stall_time
    metrics.quality_switches = sum(
        1 for a, b in zip(kept, kept[1:]) if a.level != b.level)

    if kept:
        # Nominal bitrate of each played chunk: size over playout duration.
        rates = [chunk.size / chunk.duration for chunk in kept]
        metrics.mean_bitrate = sum(rates) / len(rates)

    play_events = log.of_kind(PLAY_START)
    if play_events:
        metrics.startup_delay = play_events[0].time

    for path, breakdown in energy.items():
        if path == "total":
            metrics.energy_total = breakdown.total
        else:
            metrics.energy_per_path[path] = breakdown.total
    return metrics


def savings(baseline: float, treatment: float) -> float:
    """Relative saving of ``treatment`` vs ``baseline`` (1.0 = 100%).

    Positive when the treatment uses less; the paper reports these as
    percentages (negative values mean the treatment used more).
    """
    if baseline <= 0:
        return 0.0
    return (baseline - treatment) / baseline


def bitrate_reduction(baseline: SessionMetrics,
                      treatment: SessionMetrics) -> float:
    """Playback bitrate reduction vs baseline (negative = increase)."""
    if baseline.mean_bitrate <= 0:
        return 0.0
    return ((baseline.mean_bitrate - treatment.mean_bitrate)
            / baseline.mean_bitrate)


def path_utilization(activity: ActivityLog, path: str,
                     session_duration: float) -> float:
    """Fraction of session time the path carried any data."""
    if session_duration <= 0:
        raise ValueError(
            f"session_duration must be positive: {session_duration!r}")
    _times, values = activity.series(path, until=session_duration)
    busy = sum(1 for v in values if v > 0)
    return busy * activity.bin_width / session_duration
