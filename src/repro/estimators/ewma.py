"""Exponentially weighted moving average estimator.

The baseline the paper compares Holt-Winters against: a single smoothing
constant, no trend term, so it lags during sustained throughput drops —
which is exactly when Algorithm 1 most needs accuracy.
"""

from __future__ import annotations

from typing import Optional

from .base import ThroughputEstimator


class Ewma(ThroughputEstimator):
    """Classic EWMA: ``estimate = alpha * y + (1 - alpha) * estimate``."""

    def __init__(self, alpha: float = 0.25):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {alpha!r}")
        self.alpha = alpha
        self._value: Optional[float] = None

    def update(self, observation: float) -> None:
        if observation < 0:
            raise ValueError(f"throughput cannot be negative: {observation!r}")
        if self._value is None:
            self._value = observation
        else:
            self._value = (self.alpha * observation
                           + (1 - self.alpha) * self._value)

    def predict(self) -> Optional[float]:
        return self._value

    def reset(self) -> None:
        self._value = None

    def __repr__(self) -> str:
        return f"<Ewma value={self._value}>"
