"""Harmonic mean estimator over a sliding window.

FESTIVE estimates future throughput as the harmonic mean of the last few
chunks' download throughputs.  The harmonic mean discounts outlier spikes
(a single fast chunk cannot inflate the estimate much), which gives the
algorithm its robustness to transient bursts.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .base import ThroughputEstimator


class HarmonicMean(ThroughputEstimator):
    """Harmonic mean of the last ``window`` observations."""

    def __init__(self, window: int = 5):
        if window < 1:
            raise ValueError(f"window must be at least 1: {window!r}")
        self.window = window
        self._samples: deque = deque(maxlen=window)

    def update(self, observation: float) -> None:
        if observation < 0:
            raise ValueError(f"throughput cannot be negative: {observation!r}")
        # A zero sample would make the harmonic mean zero forever within the
        # window; clamp to a tiny positive rate instead (a stalled chunk
        # still conveys "very slow", not "mathematically undefined").
        self._samples.append(max(observation, 1e-6))

    def predict(self) -> Optional[float]:
        if not self._samples:
            return None
        return len(self._samples) / sum(1.0 / s for s in self._samples)

    def reset(self) -> None:
        self._samples.clear()

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return f"<HarmonicMean n={len(self._samples)}/{self.window}>"
