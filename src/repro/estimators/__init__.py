"""Throughput estimators: Holt-Winters (the paper's choice), EWMA, harmonic."""

from .base import ThroughputEstimator
from .ewma import Ewma
from .harmonic import HarmonicMean
from .holt_winters import HoltWinters

__all__ = ["Ewma", "HarmonicMean", "HoltWinters", "ThroughputEstimator"]
