"""Common interface for throughput estimators.

MP-DASH needs a running estimate of each subflow's throughput (the
``R_WiFi`` of Algorithm 1).  The paper uses a non-seasonal Holt-Winters
predictor; EWMA and harmonic-mean estimators are provided as baselines and
for the FESTIVE rate-adaptation algorithm (which specifies harmonic mean).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional


class ThroughputEstimator(ABC):
    """Online one-step-ahead predictor of a throughput series."""

    @abstractmethod
    def update(self, observation: float) -> None:
        """Feed one throughput observation (bytes/second)."""

    @abstractmethod
    def predict(self) -> Optional[float]:
        """Predicted next-step throughput, or None before any observation."""

    @abstractmethod
    def reset(self) -> None:
        """Discard all state."""

    def predict_or(self, default: float) -> float:
        """Prediction with a fallback for the cold-start case."""
        value = self.predict()
        return default if value is None else value
