"""Non-seasonal Holt-Winters (double exponential smoothing) predictor.

This is the estimator MP-DASH uses in the kernel (§6): more robust than EWMA
for non-stationary series because it models a local linear *trend* in
addition to the level.  Parameters follow He et al., "On the Predictability
of Large Transfer TCP Throughput" (SIGCOMM 2005), which the paper cites for
its settings.

Update equations, for observation ``y_t``::

    level_t = alpha * y_t + (1 - alpha) * (level_{t-1} + trend_{t-1})
    trend_t = beta * (level_t - level_{t-1}) + (1 - beta) * trend_{t-1}
    forecast = level_t + trend_t
"""

from __future__ import annotations

from typing import Optional

from .base import ThroughputEstimator

#: Smoothing parameters suggested by He et al. for TCP throughput series.
DEFAULT_ALPHA = 0.4
DEFAULT_BETA = 0.4


class HoltWinters(ThroughputEstimator):
    """Online non-seasonal Holt-Winters forecaster."""

    def __init__(self, alpha: float = DEFAULT_ALPHA,
                 beta: float = DEFAULT_BETA):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {alpha!r}")
        if not 0 < beta <= 1:
            raise ValueError(f"beta must be in (0, 1]: {beta!r}")
        self.alpha = alpha
        self.beta = beta
        self._level: Optional[float] = None
        self._trend: float = 0.0
        self._count = 0

    def update(self, observation: float) -> None:
        if observation < 0:
            raise ValueError(f"throughput cannot be negative: {observation!r}")
        if self._level is None:
            self._level = observation
            self._trend = 0.0
        else:
            previous_level = self._level
            self._level = (self.alpha * observation
                           + (1 - self.alpha) * (self._level + self._trend))
            self._trend = (self.beta * (self._level - previous_level)
                           + (1 - self.beta) * self._trend)
        self._count += 1

    def predict(self, horizon: int = 1) -> Optional[float]:
        """Forecast ``horizon`` steps ahead (never below zero)."""
        if self._level is None:
            return None
        return max(0.0, self._level + horizon * self._trend)

    def reset(self) -> None:
        self._level = None
        self._trend = 0.0
        self._count = 0

    @property
    def observations(self) -> int:
        return self._count

    def __repr__(self) -> str:
        if self._level is None:
            return "<HoltWinters cold>"
        return (f"<HoltWinters level={self._level:.1f} "
                f"trend={self._trend:+.1f} n={self._count}>")
