"""Delay-tolerant applications on the MP-DASH scheduler (§8).

The deadline-aware scheduler generalizes beyond video: any transfer that
must complete *by* a time rather than *as soon as possible* can ride the
preferred path and touch cellular only under deadline pressure.  The paper
names music prefetching and turn-by-turn navigation; both are implemented
here against the same :class:`~repro.core.socket_api.MpDashSocket` API the
video adapter uses.
"""

from .music import MusicPrefetcher, PlaylistTrack
from .navigation import NavigationPrefetcher, RouteTile

__all__ = ["MusicPrefetcher", "NavigationPrefetcher", "PlaylistTrack",
           "RouteTile"]
