"""Music-app prefetching over MP-DASH (§8).

"For music apps using automated recommendation (e.g., Pandora Music),
players do not need the next song until the playback of the current song is
close to its end."  The prefetcher below models exactly that: while track
*k* plays, track *k+1* downloads with a deadline equal to the remaining
playback time of track *k* (shrunk by a safety margin), so the scheduler
can keep the whole playlist off cellular whenever the preferred path is
fast enough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.socket_api import MpDashSocket
from ..mptcp.connection import MptcpConnection, Transfer
from ..net.simulator import Simulator


@dataclass(frozen=True)
class PlaylistTrack:
    """One audio item: its encoded size and playback duration."""

    title: str
    size: float
    duration: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"track size must be positive: {self.size!r}")
        if self.duration <= 0:
            raise ValueError(
                f"track duration must be positive: {self.duration!r}")


@dataclass
class TrackResult:
    """Outcome of one prefetch."""

    track: PlaylistTrack
    started_at: float
    finished_at: Optional[float] = None
    needed_by: float = 0.0
    bytes_per_path: Dict[str, float] = field(default_factory=dict)

    @property
    def on_time(self) -> bool:
        return (self.finished_at is not None
                and self.finished_at <= self.needed_by + 1e-6)

    @property
    def cellular_bytes(self) -> float:
        return self.bytes_per_path.get("cellular", 0.0)


class MusicPrefetcher:
    """Plays a playlist, prefetching each next track under a deadline.

    The first track downloads eagerly (the user pressed play — that is a
    foreground transfer, MP-DASH stays off).  From then on, track *k+1*'s
    prefetch starts as soon as track *k* starts playing, with deadline
    equal to the remaining playback time times ``safety``.
    """

    def __init__(self, sim: Simulator, connection: MptcpConnection,
                 socket: Optional[MpDashSocket],
                 playlist: List[PlaylistTrack], safety: float = 0.9):
        if not playlist:
            raise ValueError("playlist cannot be empty")
        if not 0 < safety <= 1:
            raise ValueError(f"safety must be in (0, 1]: {safety!r}")
        self.sim = sim
        self.connection = connection
        self.socket = socket
        self.playlist = playlist
        self.safety = safety
        self.results: List[TrackResult] = []
        self.stall_time = 0.0  # silence while waiting for a late track
        self._playback_ends: Optional[float] = None
        self.finished = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the session: fetch track 0 in the foreground."""
        self._fetch(0, deadline=None)

    def _fetch(self, index: int, deadline: Optional[float]) -> None:
        track = self.playlist[index]
        if self.socket is not None:
            if deadline is not None:
                self.socket.mp_dash_enable(track.size, deadline)
            else:
                self.socket.mp_dash_disable()
        result = TrackResult(track=track, started_at=self.sim.now,
                             needed_by=(self.sim.now + deadline
                                        if deadline is not None
                                        else self.sim.now))
        self.results.append(result)
        self.connection.start_transfer(
            track.size, tag=track.title,
            on_complete=lambda transfer, r=result, i=index:
                self._downloaded(i, r, transfer))

    def _downloaded(self, index: int, result: TrackResult,
                    transfer: Transfer) -> None:
        result.finished_at = self.sim.now
        result.bytes_per_path = dict(transfer.per_path)
        if index == 0:
            self._begin_playback(0)

    def _begin_playback(self, index: int) -> None:
        track = self.playlist[index]
        now = self.sim.now
        self._playback_ends = now + track.duration
        if index + 1 < len(self.playlist):
            deadline = max(track.duration * self.safety, 1.0)
            self._fetch(index + 1, deadline)
        self.sim.schedule(track.duration, self._track_over, index)

    def _track_over(self, index: int) -> None:
        next_index = index + 1
        if next_index >= len(self.playlist):
            self.finished = True
            return
        result = self.results[next_index]
        if result.finished_at is None:
            # The next track is late: silence until it lands.
            self.sim.schedule(0.2, self._wait_for, next_index, self.sim.now)
            return
        self._begin_playback(next_index)

    def _wait_for(self, index: int, stall_started: float) -> None:
        result = self.results[index]
        if result.finished_at is None:
            self.sim.schedule(0.2, self._wait_for, index, stall_started)
            return
        self.stall_time += self.sim.now - stall_started
        self._begin_playback(index)

    # ------------------------------------------------------------------
    @property
    def cellular_bytes(self) -> float:
        return sum(r.cellular_bytes for r in self.results)

    @property
    def total_bytes(self) -> float:
        return sum(sum(r.bytes_per_path.values()) for r in self.results)

    def prefetches_on_time(self) -> int:
        """Prefetched tracks (excluding the foreground first one) that
        arrived before their deadline."""
        return sum(1 for r in self.results[1:] if r.on_time)
