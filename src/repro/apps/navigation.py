"""Turn-by-turn navigation tile prefetching over MP-DASH (§8).

"For turn-by-turn navigation, a map tile only needs to be fetched before
the vehicle is close to the tile's location."  A route is a sequence of
tiles with known distances; given the vehicle's speed, each tile has an
arrival time, and its download deadline is that arrival time minus a
look-ahead margin.  The prefetcher walks the route, keeping a small window
of tiles in flight, each armed on the MP-DASH socket with its own deadline
— so on a WiFi-tethered transit ride (or any preferred path) cellular is
touched only when the vehicle outruns the downloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.socket_api import MpDashSocket
from ..mptcp.connection import MptcpConnection, Transfer
from ..net.simulator import Simulator


@dataclass(frozen=True)
class RouteTile:
    """One map tile along the route."""

    name: str
    size: float
    #: Distance from the route start to where the tile is needed (meters).
    distance: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"tile size must be positive: {self.size!r}")
        if self.distance < 0:
            raise ValueError(
                f"distance cannot be negative: {self.distance!r}")


@dataclass
class TileResult:
    tile: RouteTile
    needed_at: float
    requested_at: float
    finished_at: Optional[float] = None
    bytes_per_path: Dict[str, float] = field(default_factory=dict)

    @property
    def on_time(self) -> bool:
        return (self.finished_at is not None
                and self.finished_at <= self.needed_at + 1e-6)

    @property
    def cellular_bytes(self) -> float:
        return self.bytes_per_path.get("cellular", 0.0)


class NavigationPrefetcher:
    """Prefetches route tiles before the vehicle reaches them."""

    def __init__(self, sim: Simulator, connection: MptcpConnection,
                 socket: Optional[MpDashSocket], route: List[RouteTile],
                 speed: float, lookahead: float = 10.0):
        """``speed`` is the vehicle speed in meters/second; ``lookahead``
        the safety margin (seconds) by which a tile should land before the
        vehicle reaches it."""
        if not route:
            raise ValueError("route cannot be empty")
        if speed <= 0:
            raise ValueError(f"speed must be positive: {speed!r}")
        if lookahead < 0:
            raise ValueError(
                f"lookahead cannot be negative: {lookahead!r}")
        ordered = sorted(route, key=lambda t: t.distance)
        self.sim = sim
        self.connection = connection
        self.socket = socket
        self.route = ordered
        self.speed = speed
        self.lookahead = lookahead
        self.results: List[TileResult] = []
        self._next_index = 0
        self.finished = False

    def start(self) -> None:
        """Begin driving (time 0 = route start) and fetching tiles."""
        self._fetch_next()

    def _fetch_next(self) -> None:
        if self._next_index >= len(self.route):
            self.finished = True
            return
        tile = self.route[self._next_index]
        self._next_index += 1
        needed_at = tile.distance / self.speed
        deadline = needed_at - self.lookahead - self.sim.now
        result = TileResult(tile=tile, needed_at=needed_at,
                            requested_at=self.sim.now)
        self.results.append(result)
        if self.socket is not None:
            if deadline > 0.5:
                self.socket.mp_dash_enable(tile.size, deadline)
            else:
                # The vehicle is almost there: fetch urgently, all paths.
                self.socket.mp_dash_disable()
        self.connection.start_transfer(
            tile.size, tag=tile.name,
            on_complete=lambda transfer, r=result:
                self._tile_done(r, transfer))

    def _tile_done(self, result: TileResult, transfer: Transfer) -> None:
        result.finished_at = self.sim.now
        result.bytes_per_path = dict(transfer.per_path)
        self._fetch_next()

    # ------------------------------------------------------------------
    @property
    def cellular_bytes(self) -> float:
        return sum(r.cellular_bytes for r in self.results)

    @property
    def total_bytes(self) -> float:
        return sum(sum(r.bytes_per_path.values()) for r in self.results)

    def tiles_on_time(self) -> int:
        return sum(1 for r in self.results if r.on_time)

    def late_tiles(self) -> List[TileResult]:
        return [r for r in self.results
                if r.finished_at is not None and not r.on_time]
