"""Plain-text table formatting for the benchmark harness.

Every bench prints the same rows/series the paper's table or figure
reports; these helpers keep the output aligned and the units explicit.
:func:`sweep_table` renders a whole sweep — successes, cache hits, and
failures — as one such table.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table with right-aligned numeric columns."""
    if not headers:
        raise ValueError("a table needs headers")
    text_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}")
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _violation_cell(violations) -> str:
    """Render per-run invariant verdicts: "-" unchecked, "0" clean, else
    counts like "2E+1W" (errors, warnings, info)."""
    if violations is None:
        return "-"
    parts = [f"{violations[sev]}{sev[0].upper()}"
             for sev in ("error", "warning", "info")
             if violations.get(sev)]
    return "+".join(parts) if parts else "0"


def pct(fraction: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{fraction * 100:.{digits}f}%"


def mb(num_bytes: float, digits: int = 2) -> str:
    """Format bytes as megabytes."""
    return f"{num_bytes / 1e6:.{digits}f}MB"


def joules(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}J"


def mbps_str(bytes_per_second: float, digits: int = 2) -> str:
    return f"{bytes_per_second * 8 / 1e6:.{digits}f}Mbps"


def sweep_table(result) -> str:
    """One row per run of a :class:`~repro.experiments.sweep.SweepResult`.

    Session rows report the evaluation metrics; download rows the transfer
    outcome; failed rows carry the failure kind and message instead.  Runs
    swept with ``collect_metrics=True`` additionally report their p95
    deadline slack, and the table footer shows the sweep-wide merged
    distribution (see :func:`~repro.experiments.sweep.merged_histograms`).
    """
    from ..obs.metrics import Histogram
    from .sweep import (DownloadSummary, SessionSummary,  # avoid cycle
                        merged_histograms)

    slack_name = "repro_deadline_slack_seconds"
    rows = []
    for run in result.runs:
        status = ("cached" if run.cached
                  else "ok" if run.ok
                  else f"failed:{run.failure.kind}")
        cell_mb = energy = bitrate = stalls = slack = viol = "-"
        summary = run.summary
        if isinstance(summary, SessionSummary):
            metrics = summary.metrics
            cell_mb = f"{metrics.cellular_bytes / 1e6:.2f}"
            energy = f"{metrics.radio_energy:.1f}"
            bitrate = f"{metrics.mean_bitrate_mbps:.2f}"
            stalls = str(metrics.stall_count)
            viol = _violation_cell(summary.violations)
            payload = summary.histograms.get(slack_name)
            if payload is not None and payload["count"] > 0:
                p95 = Histogram.from_dict(payload).quantile(0.95)
                slack = f"{p95:.2f}"
        elif isinstance(summary, DownloadSummary):
            cell_mb = f"{summary.cellular_bytes / 1e6:.2f}"
            bitrate = f"{summary.duration:.2f}s"
            stalls = "miss" if summary.missed_deadline else "met"
        detail = run.failure.error if run.failure is not None else ""
        rows.append([run.index, run.config_key[:12], status,
                     f"{run.elapsed:.2f}", cell_mb, energy, bitrate, stalls,
                     slack, viol, detail])
    title = (f"sweep: {len(result.runs)} runs, "
             f"{len(result.failures)} failed, "
             f"{result.cache_hits} cached, "
             f"wall {result.wall_clock:.2f}s on {result.jobs} job(s)")
    table = format_table(
        ["run", "key", "status", "time s", "cell MB", "energy J",
         "bitrate", "stalls", "p95 slack", "viol", "detail"], rows,
        title=title)
    merged = merged_histograms(result)
    slack_hist = merged.get(slack_name)
    if slack_hist is not None and slack_hist.count > 0:
        table += (f"\nmerged deadline slack: n={slack_hist.count} "
                  f"mean={slack_hist.mean:.2f}s "
                  f"p50={slack_hist.quantile(0.5):.2f}s "
                  f"p95={slack_hist.quantile(0.95):.2f}s")
    return table


def fleet_table(result) -> str:
    """Headline population statistics of a fleet campaign.

    One labelled row per statistic from
    :meth:`~repro.experiments.fleet.FleetResult.population`, with "-"
    where no data was folded (e.g. a baseline-scheme fleet has no
    deadline observations).
    """
    pop = result.population()

    def num(value, fmt="{:.2f}"):
        return "-" if value is None else fmt.format(value)

    shards = f"{pop['shards_done']}/{pop['total_shards']}"
    if result.resumed_shards:
        shards += f" ({result.resumed_shards} resumed)"
    rows = [
        ["sessions simulated", str(pop["sessions"])],
        ["session failures", str(pop["failures"])],
        ["shards", shards],
        ["simulated time", f"{pop['sim_seconds']:.0f}s"],
        ["mean bitrate p50", num(pop["bitrate_p50_mbps"]) + " Mbit/s"],
        ["mean bitrate p95", num(pop["bitrate_p95_mbps"]) + " Mbit/s"],
        ["stalled sessions", num(pop["stalled_session_fraction"],
                                 "{:.1%}")],
        ["stall time p95", num(pop["stall_seconds_p95"]) + "s"],
        ["startup delay p50", num(pop["startup_p50_seconds"]) + "s"],
        ["cellular share p50", num(pop["cellular_fraction_p50"],
                                   "{:.1%}")],
        ["cellular data p50", num(pop["cellular_mbytes_p50"]) + " MB"],
        ["radio energy p50", num(pop["radio_energy_p50_joules"]) + " J"],
        ["deadline misses", str(pop["deadline_misses_total"])],
        ["unfinished sessions", str(pop["unfinished_sessions"])],
        ["wifi-only sessions", str(pop["wifi_only_sessions"])],
    ]
    dropped = int(getattr(result, "errors_dropped", 0))
    if dropped:
        rows.append(["error samples",
                     f"{len(result.errors)} shown (+{dropped} more)"])
    recorder = getattr(result, "recorder", None)
    if recorder is not None:
        rows.append(["recorder captures",
                     f"{recorder.get('captured', 0)} of "
                     f"{recorder.get('sessions', 0)} judged"])
    state = "complete" if pop["completed"] else "partial"
    title = (f"fleet: {state}, wall {result.wall_clock:.2f}s on "
             f"{result.jobs} job(s)")
    return format_table(["statistic", "value"], rows, title=title)
