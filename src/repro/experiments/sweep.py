"""Parallel, cached, fault-tolerant experiment sweeps.

:func:`~repro.experiments.runner.run_session` and
:func:`~repro.experiments.runner.run_file_download` execute one simulation
in-process; every paper table and parameter study re-runs them dozens of
times.  This module turns those loops into *sweeps*: lists of configs
(usually built with :func:`expand_grid`) fanned out over a process pool by
:func:`run_sweep`, with three properties the serial loops lacked:

* **Deterministic result caching.**  Configs are plain dataclass values, so
  equal configs are byte-identical; :func:`config_key` hashes that canonical
  form, and a finished run becomes a JSON artifact under ``cache_dir`` that
  later sweeps load instead of re-simulating.
* **Per-run fault isolation.**  A run that raises, or outlives the per-run
  ``timeout``, is retried up to ``retries`` times and then recorded as a
  structured :class:`RunFailure` — the sweep always completes and reports
  every config.
* **Live telemetry.**  Run lifecycle events
  (:class:`~repro.obs.events.SweepRunStarted` /
  :class:`~repro.obs.events.SweepRunFinished` /
  :class:`~repro.obs.events.SweepRunFailed` …) are published on a
  :class:`~repro.obs.bus.EventBus` so callers can render progress without
  polling.

The unit of exchange across the process boundary is a
:class:`SessionSummary` or :class:`DownloadSummary` — a picklable,
JSON-round-trippable projection of the live result objects, which hold a
connection, player, and analyzer and therefore never cross processes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from multiprocessing import get_all_start_methods, get_context
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Union)

from ..analysis.metrics import SessionMetrics
from ..net.trace import BandwidthTrace
from ..obs.bus import EventBus
from ..obs.events import (SweepCompleted, SweepRunFailed, SweepRunFinished,
                          SweepRunStarted, SweepRunSummarized, SweepStarted)
from .configs import FileDownloadConfig, SessionConfig
from .runner import (FileDownloadResult, SessionResult, run_file_download,
                     run_session)

#: Any config the default runner understands.
SweepConfig = Union[SessionConfig, FileDownloadConfig]

#: Failure discriminators carried by :class:`RunFailure`.
FAILED_ERROR = "error"
FAILED_TIMEOUT = "timeout"


# ----------------------------------------------------------------------
# Deterministic config keys
# ----------------------------------------------------------------------
def _encode(value: Any) -> Any:
    """Canonical JSON-ready form of a config value (order-stable)."""
    if is_dataclass(value) and not isinstance(value, type):
        return {spec.name: _encode(getattr(value, spec.name))
                for spec in fields(value)}
    if isinstance(value, BandwidthTrace):
        return {"__trace__": True, "times": value.times,
                "rates": value.rates, "loop": value.loop}
    if isinstance(value, Mapping):
        # Sort by the *stringified* key: that is the form the emitted dict
        # actually carries, and raw-key sorting raises TypeError for
        # mixed-type keys (e.g. {1: ..., "b": ...}).
        items = sorted(value.items(), key=lambda item: str(item[0]))
        return {str(k): _encode(v) for k, v in items}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for a config key")


def config_key(config: SweepConfig) -> str:
    """Deterministic hash naming one run: equal configs ⇒ equal keys.

    The key doubles as the cache filename, so it also embeds the config's
    type — a :class:`SessionConfig` and a :class:`FileDownloadConfig` can
    never collide.
    """
    payload = {"kind": type(config).__name__, "config": _encode(config)}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def expand_grid(base: SweepConfig,
                grid: Mapping[str, Sequence]) -> List[SweepConfig]:
    """Cartesian product of field overrides applied to ``base``.

    ``grid`` maps config field names to value lists; the special key
    ``"scheme"`` routes through
    :meth:`~repro.experiments.configs.SessionConfig.with_scheme` after the
    other overrides.  Order is deterministic: the grid's key order, values
    in the given order, last key varying fastest.
    """
    if not grid:
        return [base]
    names = list(grid)
    known = {spec.name for spec in fields(base)}
    for name in names:
        if name != "scheme" and name not in known:
            raise ValueError(
                f"unknown {type(base).__name__} field {name!r} "
                f"(known: {sorted(known)})")
    configs: List[SweepConfig] = []
    for combo in itertools.product(*(grid[name] for name in names)):
        overrides = dict(zip(names, combo))
        scheme = overrides.pop("scheme", None)
        config = replace(base, **overrides) if overrides else base
        if scheme is not None:
            config = config.with_scheme(scheme)
        configs.append(config)
    return configs


# ----------------------------------------------------------------------
# Picklable summaries (the process/caching boundary)
# ----------------------------------------------------------------------
@dataclass
class SessionSummary:
    """What survives of a :class:`SessionResult` across processes.

    Carries everything the comparisons and tables read — the metrics, the
    scheduler counters, completion — and none of the live objects
    (connection, player, analyzer, event stream).
    """

    config_key: str
    finished: bool
    session_duration: float
    metrics: SessionMetrics
    scheduler_stats: Dict[str, int] = field(default_factory=dict)
    #: Serialized :class:`~repro.obs.metrics.Histogram` dicts keyed by
    #: exposition name, populated when the run collected metrics.  Plain
    #: dicts (not Histogram objects) so the summary stays a JSON value;
    #: :func:`merged_histograms` revives and folds them per grid point.
    histograms: Dict[str, Any] = field(default_factory=dict)
    #: Invariant-violation counts by severity (see
    #: :mod:`repro.obs.check`); ``None`` when the run was not checked,
    #: an empty dict when checked and clean.
    violations: Optional[Dict[str, int]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "session", "config_key": self.config_key,
                "finished": self.finished,
                "session_duration": self.session_duration,
                "metrics": asdict(self.metrics),
                "scheduler_stats": dict(self.scheduler_stats),
                "histograms": dict(self.histograms),
                "violations": (dict(self.violations)
                               if self.violations is not None else None)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SessionSummary":
        # .get: artifacts cached by pre-histogram versions still load.
        violations = payload.get("violations")
        return cls(config_key=payload["config_key"],
                   finished=payload["finished"],
                   session_duration=payload["session_duration"],
                   metrics=SessionMetrics(**payload["metrics"]),
                   scheduler_stats=dict(payload["scheduler_stats"]),
                   histograms=dict(payload.get("histograms", {})),
                   violations=(dict(violations) if violations is not None
                               else None))


@dataclass
class DownloadSummary:
    """What survives of a :class:`FileDownloadResult` across processes."""

    config_key: str
    duration: float
    bytes_per_path: Dict[str, float]
    missed_deadline: bool
    radio_energy: float

    @property
    def cellular_bytes(self) -> float:
        return self.bytes_per_path.get("cellular", 0.0)

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes_per_path.values())

    @property
    def cellular_fraction(self) -> float:
        total = self.total_bytes
        return self.cellular_bytes / total if total > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "download", "config_key": self.config_key,
                "duration": self.duration,
                "bytes_per_path": dict(self.bytes_per_path),
                "missed_deadline": self.missed_deadline,
                "radio_energy": self.radio_energy}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DownloadSummary":
        return cls(config_key=payload["config_key"],
                   duration=payload["duration"],
                   bytes_per_path=dict(payload["bytes_per_path"]),
                   missed_deadline=payload["missed_deadline"],
                   radio_energy=payload["radio_energy"])


RunSummary = Union[SessionSummary, DownloadSummary]

_SUMMARY_KINDS = {"session": SessionSummary, "download": DownloadSummary}


def summary_from_dict(payload: Mapping[str, Any]) -> RunSummary:
    """Inverse of ``summary.to_dict()`` for either summary kind."""
    kind = payload.get("kind")
    cls = _SUMMARY_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown summary kind {kind!r}")
    return cls.from_dict(payload)


def summarize_session(result: SessionResult,
                      key: Optional[str] = None) -> SessionSummary:
    """Project a live :class:`SessionResult` onto the picklable boundary."""
    histograms: Dict[str, Any] = {}
    if result.metrics_registry is not None:
        for histogram in result.metrics_registry.histograms():
            name = histogram.name
            if histogram.labels:
                rendered = ",".join(f"{k}={v}" for k, v in histogram.labels)
                name = f"{name}{{{rendered}}}"
            histograms[name] = histogram.to_dict()
    violations: Optional[Dict[str, int]] = None
    if result.check_report is not None:
        violations = {}
        for violation in result.check_report.violations:
            violations[violation.severity] = \
                violations.get(violation.severity, 0) + 1
    return SessionSummary(
        config_key=key if key is not None else config_key(result.config),
        finished=result.finished,
        session_duration=result.session_duration,
        metrics=result.metrics,
        scheduler_stats=dict(result.scheduler_stats),
        histograms=histograms,
        violations=violations)


def summarize_download(result: FileDownloadResult,
                       key: Optional[str] = None) -> DownloadSummary:
    """Project a live :class:`FileDownloadResult` onto the boundary."""
    return DownloadSummary(
        config_key=key if key is not None else config_key(result.config),
        duration=result.duration,
        bytes_per_path=dict(result.bytes_per_path),
        missed_deadline=result.missed_deadline,
        radio_energy=result.radio_energy)


def default_runner(config: SweepConfig) -> RunSummary:
    """Run one config with the matching runner and summarize the result.

    Sessions run with the stock invariant checkers attached (see
    :mod:`repro.obs.check`), so every sweep doubles as a consistency
    audit: per-run violation counts ride the summary into
    :func:`~repro.experiments.tables.sweep_table`.
    """
    if isinstance(config, SessionConfig):
        return summarize_session(run_session(config, check=True))
    if isinstance(config, FileDownloadConfig):
        return summarize_download(run_file_download(config))
    raise TypeError(
        f"no default runner for {type(config).__name__}; pass runner=")


# ----------------------------------------------------------------------
# Worker-side execution (fault + timeout isolation)
# ----------------------------------------------------------------------
class RunTimeout(Exception):
    """One run exceeded the sweep's per-run timeout."""


def _alarm_available() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


def _call_with_timeout(runner: Callable[[Any], RunSummary], config: Any,
                       timeout: Optional[float]) -> RunSummary:
    """Invoke ``runner`` under a SIGALRM deadline when one is enforceable.

    Workers are fresh processes whose main thread runs the simulation, so
    the alarm interrupts even a wedged pure-Python loop.  Where SIGALRM is
    unavailable (non-main thread, non-POSIX) the run proceeds unbounded.
    """
    if not timeout or not _alarm_available():
        return runner(config)

    def _expired(_signum, _frame):
        raise RunTimeout(f"run exceeded {timeout:g}s")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return runner(config)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute(runner: Optional[Callable[[Any], RunSummary]], config: Any,
             timeout: Optional[float]) -> tuple:
    """Run one config and report ``(status, payload, elapsed)``.

    Never raises for run-level problems: exceptions become ``("error",
    message, elapsed)`` and timeouts ``("timeout", message, elapsed)``, so
    one bad config cannot take the pool (or a serial sweep) down with it.
    """
    start = time.perf_counter()
    try:
        summary = _call_with_timeout(runner or default_runner, config,
                                     timeout)
        return ("ok", summary, time.perf_counter() - start)
    except RunTimeout as exc:
        return (FAILED_TIMEOUT, str(exc), time.perf_counter() - start)
    except Exception as exc:
        return (FAILED_ERROR, f"{type(exc).__name__}: {exc}",
                time.perf_counter() - start)


# ----------------------------------------------------------------------
# The on-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """One JSON artifact per config key under ``root``.

    Writes are atomic (temp file + rename), so a sweep killed mid-write
    never leaves a truncated artifact; unreadable or malformed entries are
    treated as misses, never as errors.
    """

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> Optional[RunSummary]:
        try:
            with open(self.path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return summary_from_dict(payload)
        except (OSError, ValueError, TypeError, KeyError):
            return None

    def store(self, key: str, summary: RunSummary) -> None:
        final = self.path(key)
        tmp = f"{final}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(summary.to_dict(), handle, sort_keys=True)
        os.replace(tmp, final)


# ----------------------------------------------------------------------
# Sweep bookkeeping
# ----------------------------------------------------------------------
@dataclass
class RunFailure:
    """A run that exhausted its retries, recorded instead of raised."""

    config_key: str
    index: int
    kind: str       # FAILED_ERROR or FAILED_TIMEOUT
    error: str
    attempts: int
    elapsed: float

    def to_dict(self) -> Dict[str, Any]:
        return {"config_key": self.config_key, "index": self.index,
                "kind": self.kind, "error": self.error,
                "attempts": self.attempts, "elapsed": self.elapsed}


@dataclass
class SweepRun:
    """One config's complete story within a sweep."""

    index: int
    config: Any
    config_key: str
    summary: Optional[RunSummary] = None
    failure: Optional[RunFailure] = None
    cached: bool = False
    attempts: int = 0
    elapsed: float = 0.0
    #: True when this run's outcome was copied from an identical config
    #: earlier in the same sweep (deduplicated, never simulated itself).
    shared: bool = False
    #: Warning recorded when the on-disk cache write failed; the run
    #: itself still succeeded with its in-memory summary.
    cache_error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.summary is not None


@dataclass
class SweepResult:
    """Everything :func:`run_sweep` produced, successes and failures."""

    runs: List[SweepRun]
    jobs: int
    wall_clock: float
    cache_dir: Optional[str] = None

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self):
        return iter(self.runs)

    @property
    def summaries(self) -> List[RunSummary]:
        return [run.summary for run in self.runs if run.summary is not None]

    @property
    def failures(self) -> List[RunFailure]:
        return [run.failure for run in self.runs if run.failure is not None]

    @property
    def cache_hits(self) -> int:
        return sum(1 for run in self.runs if run.cached)

    @property
    def cache_errors(self) -> List[str]:
        """Cache-write warnings, one per run whose artifact was lost."""
        return [f"{run.config_key}: {run.cache_error}" for run in self.runs
                if run.cache_error is not None]

    @property
    def ok(self) -> bool:
        """True when every run produced a summary."""
        return all(run.ok for run in self.runs)

    def export_report(self, path: str, bench_reports: Sequence[Any] = (),
                      baseline: Optional[Any] = None,
                      threshold: float = 0.25) -> None:
        """Write the self-contained HTML sweep report to ``path``.

        ``bench_reports`` are loaded
        :class:`~repro.obs.bench.BenchReport` objects (oldest first) for
        the trajectory panel; ``baseline`` additionally gates the newest
        one with :func:`~repro.obs.bench.compare_reports`.
        """
        from ..obs.report import sweep_report_html, write_report

        write_report(path, sweep_report_html(
            self, bench_reports=bench_reports, baseline=baseline,
            threshold=threshold))


def merged_histograms(result: SweepResult) -> Dict[str, Any]:
    """Fold every run's histograms into one distribution per name.

    Runs must have been swept with ``collect_metrics=True`` configs (the
    summaries then carry serialized histograms); runs without histograms
    are skipped.  Returns exposition name →
    :class:`~repro.obs.metrics.Histogram`, so e.g. the sweep-wide p95
    deadline slack is
    ``merged_histograms(r)["repro_deadline_slack_seconds"].quantile(0.95)``.
    """
    from ..obs.metrics import Histogram

    merged: Dict[str, Any] = {}
    for summary in result.summaries:
        for name, payload in getattr(summary, "histograms", {}).items():
            histogram = Histogram.from_dict(payload)
            if name in merged:
                try:
                    merged[name].merge(histogram)
                except ValueError as exc:
                    # Mismatched layouts would silently misfold into
                    # nonsense quantiles; name the series and both
                    # layouts instead.
                    raise ValueError(
                        f"sweep histograms for {name!r} (run "
                        f"{summary.config_key[:12]}) have mismatched "
                        f"bucket layouts: {exc}") from None
            else:
                merged[name] = histogram
    return merged


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def _publish_summarized(bus: EventBus, clock: Callable[[], float],
                        run: SweepRun) -> None:
    """Headline QoE telemetry for live consumers (the dashboard).

    Only session summaries have one; download-only summaries are silent.
    """
    summary = run.summary
    metrics = getattr(summary, "metrics", None)
    if metrics is None:
        return
    violations = getattr(summary, "violations", None)
    bus.publish(SweepRunSummarized(
        clock(), run.config_key, run.index,
        bool(getattr(summary, "finished", True)),
        metrics.mean_bitrate, metrics.stall_count,
        metrics.cellular_bytes, metrics.radio_energy,
        sum(violations.values()) if violations else 0))


def _settle(run: SweepRun, outcome: tuple, retries: int, cache:
            Optional[ResultCache], bus: EventBus,
            clock: Callable[[], float]) -> bool:
    """Fold one attempt's outcome into ``run``; False means retry."""
    status, payload, elapsed = outcome
    run.elapsed += elapsed
    if status == "ok":
        run.summary = payload
        if cache is not None:
            try:
                cache.store(run.config_key, payload)
            except (OSError, TypeError, ValueError) as exc:
                # A full disk or read-only cache dir must not void a
                # finished simulation: keep the in-memory summary and
                # record the write failure as a warning on the run.
                run.cache_error = f"{type(exc).__name__}: {exc}"
        bus.publish(SweepRunFinished(clock(), run.config_key, run.index,
                                     elapsed, False))
        _publish_summarized(bus, clock, run)
        return True
    if run.attempts <= retries:
        return False
    run.failure = RunFailure(config_key=run.config_key, index=run.index,
                             kind=status, error=payload,
                             attempts=run.attempts, elapsed=run.elapsed)
    bus.publish(SweepRunFailed(clock(), run.config_key, run.index, status,
                               payload, run.attempts))
    return True


def _run_serial(pending: List[SweepRun], runner, timeout, retries, cache,
                bus, clock) -> None:
    for run in pending:
        while True:
            run.attempts += 1
            bus.publish(SweepRunStarted(clock(), run.config_key, run.index,
                                        run.attempts))
            outcome = _execute(runner, run.config, timeout)
            if _settle(run, outcome, retries, cache, bus, clock):
                break


def _pool_context():
    # Fork keeps module-level runners defined in caller scripts picklable
    # by reference and inherits sys.path; fall back where absent.
    if "fork" in get_all_start_methods():
        return get_context("fork")
    return get_context()


def _fresh_pool(max_workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=max_workers,
                               mp_context=_pool_context())


def _run_pool(pending: List[SweepRun], runner, timeout, retries, cache, bus,
              clock, jobs: int) -> None:
    """Fan ``pending`` out over a process pool, surviving pool deaths.

    A worker hard-crash (segfault, OOM kill) marks the whole
    ``ProcessPoolExecutor`` broken and fails *every* in-flight future, not
    just the culprit's.  The executor cannot attribute the crash, so the
    futures that completed exceptionally in that round are each charged
    one attempt — but their retries, and the still-queued runs, go to a
    *fresh* pool instead of cascading into guaranteed failures on the
    broken one.  In-flight runs that never reached a ``wait`` round are
    requeued uncharged (their ``SweepRunStarted`` event is republished
    with the same attempt number on resubmission).
    """
    max_workers = min(jobs, len(pending))
    queue: List[SweepRun] = list(pending)
    futures: Dict[Any, SweepRun] = {}
    pool = _fresh_pool(max_workers)
    try:
        while queue or futures:
            while queue:
                run = queue[0]
                run.attempts += 1
                bus.publish(SweepRunStarted(clock(), run.config_key,
                                            run.index, run.attempts))
                try:
                    future = pool.submit(_execute, runner, run.config,
                                         timeout)
                except BrokenProcessPool:
                    # The pool died since the last round; this run never
                    # reached a worker, so the attempt is uncharged and
                    # goes to a replacement pool.
                    run.attempts -= 1
                    pool.shutdown(wait=False)
                    pool = _fresh_pool(max_workers)
                    continue
                except Exception as exc:
                    # Unpicklable config or shut-down executor: permanent.
                    _settle(run, (FAILED_ERROR,
                                  f"{type(exc).__name__}: {exc}", 0.0),
                            -1, cache, bus, clock)
                    queue.pop(0)
                    continue
                futures[future] = run
                queue.pop(0)
            if not futures:
                continue
            done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                run = futures.pop(future)
                try:
                    outcome = future.result()
                except BrokenProcessPool as exc:
                    broken = True
                    outcome = (FAILED_ERROR,
                               f"worker process died: {exc}", 0.0)
                except Exception as exc:
                    outcome = (FAILED_ERROR,
                               f"{type(exc).__name__}: {exc}", 0.0)
                if not _settle(run, outcome, retries, cache, bus, clock):
                    queue.append(run)
            if broken:
                for future in list(futures):
                    run = futures.pop(future)
                    run.attempts -= 1  # never completed; requeue uncharged
                    queue.append(run)
                pool.shutdown(wait=False)
                pool = _fresh_pool(max_workers)
    finally:
        pool.shutdown(wait=False)


def run_sweep(configs: Iterable[SweepConfig], jobs: int = 1,
              cache_dir: Optional[str] = None,
              timeout: Optional[float] = None, retries: int = 0,
              bus: Optional[EventBus] = None,
              runner: Optional[Callable[[Any], RunSummary]] = None,
              ledger: Optional[str] = None) -> SweepResult:
    """Run every config, in parallel, reusing cached results.

    ``jobs=1`` runs in-process (no pickling, exact tracebacks in events);
    ``jobs>1`` fans out over a process pool.  Identical configs within one
    sweep are deduplicated by :func:`config_key` — simulated once, with
    the outcome (summary or failure) shared by every duplicate.
    ``cache_dir`` enables the
    on-disk result cache; ``timeout`` bounds each run's wall-clock seconds;
    failed runs are retried ``retries`` times before being recorded as
    :class:`RunFailure` entries.  ``runner`` replaces
    :func:`default_runner` (it must be a picklable, module-level callable
    when ``jobs > 1``) — the hook the failure-injection tests and custom
    harnesses use.  Lifecycle telemetry is published on ``bus``.
    ``ledger`` appends the finished sweep's headline record to the run
    ledger at that path (see :mod:`repro.obs.ledger`).
    """
    configs = list(configs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs!r}")
    if retries < 0:
        raise ValueError(f"retries cannot be negative: {retries!r}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive: {timeout!r}")
    if bus is None:
        bus = EventBus()
    start = time.perf_counter()

    def clock() -> float:
        return time.perf_counter() - start

    runs = [SweepRun(index=i, config=config, config_key=config_key(config))
            for i, config in enumerate(configs)]
    bus.publish(SweepStarted(0.0, len(runs), jobs))

    cache = ResultCache(cache_dir) if cache_dir is not None else None
    pending: List[SweepRun] = []
    primaries: Dict[str, SweepRun] = {}
    duplicates: List[SweepRun] = []
    for run in runs:
        if run.config_key in primaries:
            # Identical config already in this sweep: simulate once,
            # share the outcome after the primary settles.
            duplicates.append(run)
            continue
        primaries[run.config_key] = run
        hit = cache.load(run.config_key) if cache is not None else None
        if hit is not None:
            run.summary = hit
            run.cached = True
            bus.publish(SweepRunFinished(clock(), run.config_key, run.index,
                                         0.0, True))
            _publish_summarized(bus, clock, run)
        else:
            pending.append(run)

    if pending:
        if jobs == 1:
            _run_serial(pending, runner, timeout, retries, cache, bus, clock)
        else:
            _run_pool(pending, runner, timeout, retries, cache, bus, clock,
                      jobs)

    for run in duplicates:
        primary = primaries[run.config_key]
        run.shared = True
        run.attempts = primary.attempts
        if primary.summary is not None:
            run.summary = primary.summary
            run.cached = True  # served without a fresh simulation
            bus.publish(SweepRunFinished(clock(), run.config_key, run.index,
                                         0.0, True))
            _publish_summarized(bus, clock, run)
        elif primary.failure is not None:
            run.failure = replace(primary.failure, index=run.index)
            bus.publish(SweepRunFailed(
                clock(), run.config_key, run.index, run.failure.kind,
                run.failure.error, run.failure.attempts))

    wall = time.perf_counter() - start
    succeeded = sum(1 for run in runs if run.ok)
    cache_hits = sum(1 for run in runs if run.cached)
    bus.publish(SweepCompleted(wall, len(runs), succeeded,
                               len(runs) - succeeded, cache_hits))
    result = SweepResult(runs=runs, jobs=jobs, wall_clock=wall,
                         cache_dir=cache_dir)
    if ledger is not None:
        from ..obs.ledger import RunLedger, sweep_entry

        RunLedger(ledger).append(sweep_entry(result))
    return result
