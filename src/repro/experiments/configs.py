"""Experiment configuration objects.

A :class:`SessionConfig` describes one streaming session end to end —
network conditions, video, ABR algorithm, and MP-DASH settings — and a
:class:`FileDownloadConfig` one deadline-bounded file transfer (the §7.2
scheduler-only workload).  Both are plain data: the runner builds the
simulation from them, so every experiment is a reproducible value.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..core.deadlines import DEADLINE_MODES, RATE_BASED
from ..net.trace import BandwidthTrace

#: Scheme labels used across benches and tables.
BASELINE = "baseline"       # vanilla MPTCP, no MP-DASH
DURATION = "duration"       # MP-DASH, duration-based deadlines
RATE = "rate"               # MP-DASH, rate-based deadlines
SCHEMES = (BASELINE, DURATION, RATE)


@dataclass
class SessionConfig:
    """One adaptive-streaming session."""

    video: str = "big_buck_bunny"
    abr: str = "festive"
    abr_kwargs: Dict = field(default_factory=dict)

    # --- MP-DASH ---
    mpdash: bool = False
    deadline_mode: str = RATE_BASED
    alpha: float = 1.0
    extension_enabled: bool = True
    phi_fraction: Optional[float] = None

    # --- network ---
    wifi_mbps: Optional[float] = 3.8
    lte_mbps: Optional[float] = 3.0
    wifi_trace: Optional[BandwidthTrace] = None
    lte_trace: Optional[BandwidthTrace] = None
    wifi_rtt_ms: float = 50.0
    lte_rtt_ms: float = 55.0
    #: Dummynet-style cap on the cellular path (bytes/second); the Table 4
    #: throttling baseline.  None = unthrottled.
    lte_throttle: Optional[float] = None
    wifi_only: bool = False
    mptcp_scheduler: str = "minrtt"
    #: None = one primary RTT (the DSS-bit delay); 0 disables the model.
    signaling_delay: Optional[float] = None
    #: Tear down / re-establish disabled subflows instead of MP-DASH's
    #: skip-in-scheduler semantics (the §6 alternative; costs a handshake
    #: and a congestion restart per re-enable).
    subflow_reestablish: bool = False

    # --- player ---
    buffer_capacity: float = 40.0
    chunk_duration: float = 4.0
    video_duration: float = 600.0

    # --- simulation ---
    #: Simulation kernel: ``"fast"`` (event-driven analytic, the default)
    #: or ``"tick"`` (the fixed-interval reference implementation).  The
    #: choice also selects the matching player playout clock.
    kernel: str = "fast"
    tick_interval: float = 0.02
    device: str = "galaxy_note"
    steady_state_fraction: float = 0.2
    max_sim_time: Optional[float] = None
    #: Record the session's full typed event stream (repro.obs); the
    #: result then carries the events and can export a JSONL trace.
    record_trace: bool = False
    #: Attach a SessionMetricsCollector (plus the 1 Hz PathSampler); the
    #: result then carries ``metrics_registry``.
    collect_metrics: bool = False
    #: Attach a SpanBuilder; the result then carries ``spans``.
    collect_spans: bool = False

    def __post_init__(self) -> None:
        if self.kernel not in ("fast", "tick"):
            raise ValueError(f"unknown kernel {self.kernel!r} "
                             f"(known: fast, tick)")
        if self.deadline_mode not in DEADLINE_MODES:
            raise ValueError(f"unknown deadline mode {self.deadline_mode!r} "
                             f"(known: {DEADLINE_MODES})")
        if not 0 < self.alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {self.alpha!r}")
        if self.wifi_trace is None and self.wifi_mbps is None:
            raise ValueError("need wifi_mbps or wifi_trace")
        if (not self.wifi_only and self.lte_trace is None
                and self.lte_mbps is None):
            raise ValueError("need lte_mbps or lte_trace (or wifi_only)")

    @property
    def sim_deadline(self) -> float:
        """Wall-clock cap on the simulation."""
        if self.max_sim_time is not None:
            return self.max_sim_time
        return 2.0 * self.video_duration + 120.0

    def with_scheme(self, scheme: str) -> "SessionConfig":
        """This config under one of the three evaluation schemes."""
        if scheme == BASELINE:
            return replace(self, mpdash=False)
        if scheme in (DURATION, RATE):
            return replace(self, mpdash=True, deadline_mode=scheme)
        raise ValueError(f"unknown scheme {scheme!r} (known: {SCHEMES})")


@dataclass
class FileDownloadConfig:
    """One deadline-bounded file download (the §7.2 workload)."""

    size: float
    deadline: float
    mpdash: bool = True
    alpha: float = 1.0
    wifi_mbps: Optional[float] = 3.8
    lte_mbps: Optional[float] = 3.0
    wifi_trace: Optional[BandwidthTrace] = None
    lte_trace: Optional[BandwidthTrace] = None
    wifi_rtt_ms: float = 50.0
    lte_rtt_ms: float = 55.0
    mptcp_scheduler: str = "minrtt"
    signaling_delay: Optional[float] = None
    subflow_reestablish: bool = False
    #: Simulation kernel: ``"fast"`` (event-driven analytic) or ``"tick"``.
    kernel: str = "fast"
    tick_interval: float = 0.01
    device: str = "galaxy_note"

    def __post_init__(self) -> None:
        if self.kernel not in ("fast", "tick"):
            raise ValueError(f"unknown kernel {self.kernel!r} "
                             f"(known: fast, tick)")
        if self.size <= 0:
            raise ValueError(f"size must be positive: {self.size!r}")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive: {self.deadline!r}")
