"""Fleet-scale session campaigns: population distributions in bounded memory.

MP-DASH's headline results (§5-6) are *population* claims — QoE,
cellular-byte savings, and deadline-miss rates over many users at many
locations — while :func:`~repro.experiments.runner.run_session` simulates
one session and :func:`~repro.experiments.sweep.run_sweep` one config
grid.  This module closes that gap with three pieces:

* a **workload**: :class:`~repro.workloads.arrivals.SessionArrivals`
  describes the whole fleet (arrival process, location, device,
  path-capability mix) and materializes per-session
  :class:`~repro.experiments.configs.SessionConfig` values lazily;
* **sharded execution**: sessions are grouped into fixed-size shards,
  each shard simulated by :func:`_run_shard` (in-process or on the sweep
  module's process-pool machinery), which folds its sessions into one
  :class:`~repro.obs.metrics.MetricsRegistry` and ships *only the folded
  registry* back — the parent never holds per-session artifacts, so peak
  memory is a function of shard size and worker count, not fleet size;
* **streaming aggregation with checkpoints**: shard registries merge
  into the population registry strictly in shard order (float
  accumulation is order-dependent, and in-order merging is what makes
  ``--jobs 1`` and ``--jobs N`` byte-identical), and every
  ``checkpoint_every`` shards the population state is written atomically
  (temp file + rename, the :class:`~repro.experiments.sweep.ResultCache`
  pattern) so a killed campaign resumes from its last checkpoint instead
  of restarting.

Determinism contract: for a given :class:`FleetConfig`, the merged
population registry is byte-identical (as canonical JSON) across worker
counts, shardings of the index space, and kill/resume boundaries.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..analysis.metrics import SessionMetrics
from ..energy.devices import DEVICES
from ..net.trace import BandwidthTrace
from ..net.units import mbps
from ..obs.bus import EventBus
from ..obs.events import (FleetCheckpointSaved, FleetCompleted,
                          FleetSessionCaptured, FleetShardCompleted,
                          FleetStarted, FleetWorkerHeartbeat)
from ..obs.metrics import (Histogram, MetricsRegistry, exponential_buckets,
                           linear_buckets)
from ..obs.recorder import (RecorderConfig, ShardRecorder, empty_stats,
                            merge_stats, rank_anomalies, save_manifest)
from ..obs.why import fold_attributions
from ..workloads.arrivals import (ARRIVAL_MODELS, DEFAULT_DEVICE_MIX,
                                  SessionArrivals, SessionDraw)
from ..workloads.locations import Location, field_study_locations
from .configs import SCHEMES, SessionConfig
from .runner import run_session
from .sweep import _pool_context, config_key

#: Scenario id -> exposition label (see repro.workloads.locations).
SCENARIO_NAMES = {1: "never", 2: "sometimes", 3: "always"}

#: Bucket layouts for the population distributions.  Pinned here — not
#: derived from the data — so registries from any shard always merge.
BITRATE_BOUNDS = linear_buckets(0.25, 0.25, 24)           # Mbps
STALL_TIME_BOUNDS = exponential_buckets(0.1, 1.6, 16)     # seconds
STALL_COUNT_BOUNDS = linear_buckets(1.0, 1.0, 20)         # stalls/session
STARTUP_BOUNDS = exponential_buckets(0.1, 1.5, 14)        # seconds
CELLULAR_MB_BOUNDS = exponential_buckets(0.1, 1.6, 18)    # MB/session
CELLULAR_FRACTION_BOUNDS = linear_buckets(0.05, 0.05, 20)
ENERGY_BOUNDS = exponential_buckets(1.0, 1.5, 18)         # joules
MISS_BOUNDS = linear_buckets(1.0, 1.0, 16)                # misses/session
ARRIVAL_HOUR_BOUNDS = linear_buckets(1.0, 1.0, 24)        # hour of day

CHECKPOINT_FILE = "fleet-checkpoint.json"
CHECKPOINT_VERSION = 1
#: Cap on per-session error samples carried by results and checkpoints.
MAX_ERROR_SAMPLES = 20
#: Cap on error samples each shard ships back; ``error_total`` carries
#: the true count so the drop is never silent.
SHARD_ERROR_SAMPLES = 5


@dataclass
class FleetConfig:
    """One fleet campaign, as plain data (hashable via ``fleet_key``)."""

    sessions: int = 1000
    #: Arrival model: ``"poisson"`` or ``"diurnal"``.
    arrival: str = "poisson"
    #: Campaign window in seconds (arrivals land in ``[0, horizon)``).
    horizon: float = 86400.0
    seed: int = 0
    video: str = "big_buck_bunny"
    abr: str = "festive"
    #: Evaluation scheme per session: baseline / duration / rate.
    scheme: str = "rate"
    #: Video length per session, seconds (fleets favour short sessions).
    video_duration: float = 60.0
    wifi_only_fraction: float = 0.05
    device_mix: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_DEVICE_MIX))
    #: Sessions per shard: the memory/progress granularity.
    shard_size: int = 50
    kernel: str = "fast"
    #: Inject the seeded §3.1 scheduler fault into this session index —
    #: the deterministic anomaly used by capture tests and CI smokes.
    #: Part of the campaign identity (it changes the simulation), so it
    #: changes ``fleet_key``.
    fault_session: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sessions < 0:
            raise ValueError(f"sessions cannot be negative: "
                             f"{self.sessions!r}")
        if self.fault_session is not None and self.fault_session < 0:
            raise ValueError(f"fault_session cannot be negative: "
                             f"{self.fault_session!r}")
        if self.arrival not in ARRIVAL_MODELS:
            raise ValueError(f"unknown arrival model {self.arrival!r}; "
                             f"known: {', '.join(ARRIVAL_MODELS)}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive: {self.horizon!r}")
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r} "
                             f"(known: {SCHEMES})")
        if self.video_duration <= 0:
            raise ValueError(f"video_duration must be positive: "
                             f"{self.video_duration!r}")
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1: "
                             f"{self.shard_size!r}")
        for device in self.device_mix:
            if device not in DEVICES:
                raise ValueError(f"unknown device {device!r} "
                                 f"(known: {sorted(DEVICES)})")

    @property
    def total_shards(self) -> int:
        return math.ceil(self.sessions / self.shard_size)

    def shard_range(self, shard: int) -> range:
        if not 0 <= shard < max(self.total_shards, 1):
            raise IndexError(f"shard {shard} outside "
                             f"[0, {self.total_shards})")
        start = shard * self.shard_size
        return range(start, min(self.sessions, start + self.shard_size))

    def workload(self) -> SessionArrivals:
        return SessionArrivals(
            sessions=self.sessions, arrival=self.arrival,
            horizon=self.horizon, seed=self.seed,
            wifi_only_fraction=self.wifi_only_fraction,
            device_mix=self.device_mix)


def fleet_key(config: FleetConfig) -> str:
    """Deterministic hash naming one campaign (checkpoint identity)."""
    return config_key(config)


_LOCATION_CACHE: Dict[str, Location] = {}


def _location(name: str) -> Location:
    if not _LOCATION_CACHE:
        _LOCATION_CACHE.update(
            (loc.name, loc) for loc in field_study_locations())
    return _LOCATION_CACHE[name]


def session_config(config: FleetConfig, draw: SessionDraw) -> SessionConfig:
    """Materialize one drawn session as a runnable :class:`SessionConfig`.

    The channel mirrors :meth:`~repro.workloads.locations.Location`'s
    trace construction (same means, sigmas, and dropout windows) but is
    seeded by the draw's private ``trace_seed``, so co-located sessions
    see different realizations of the same measured conditions.
    """
    location = _location(draw.location)
    # Long enough for the sim_deadline cap plus startup slack.
    horizon = 2.0 * config.video_duration + 180.0
    wifi = BandwidthTrace.random_walk(
        mbps(location.wifi_mbps), location.wifi_sigma, horizon,
        interval=0.5, seed=draw.trace_seed)
    if location.dropouts:
        wifi = BandwidthTrace.with_dropouts(
            wifi, list(location.dropouts),
            floor_bytes_per_s=mbps(0.1 * location.wifi_mbps))
    lte = None
    if not draw.wifi_only:
        lte = BandwidthTrace.random_walk(
            mbps(location.lte_mbps), 0.15, horizon,
            interval=0.5, seed=draw.trace_seed + 50_000)
    base = SessionConfig(
        video=config.video, abr=config.abr,
        wifi_mbps=None, lte_mbps=None,
        wifi_trace=wifi, lte_trace=lte,
        wifi_rtt_ms=location.wifi_rtt_ms, lte_rtt_ms=location.lte_rtt_ms,
        wifi_only=draw.wifi_only,
        video_duration=config.video_duration,
        kernel=config.kernel, device=draw.device)
    return base.with_scheme(config.scheme)


def fold_session(registry: MetricsRegistry, draw: SessionDraw,
                 metrics: SessionMetrics, scheduler_stats: Dict[str, int],
                 finished: bool, session_duration: float) -> None:
    """Fold one finished session into the population registry.

    Pure accumulation into pinned-bound metrics: the same fold applied
    in any shard of any worker produces mergeable, order-stable state.
    """
    scenario = SCENARIO_NAMES.get(draw.scenario, str(draw.scenario))
    registry.counter("repro_fleet_sessions_total").inc()
    registry.counter("repro_fleet_sessions_total",
                     {"scenario": scenario}).inc()
    registry.counter("repro_fleet_sessions_by_device_total",
                     {"device": draw.device}).inc()
    if draw.wifi_only:
        registry.counter("repro_fleet_wifi_only_sessions_total").inc()
    if not finished:
        registry.counter("repro_fleet_sessions_unfinished_total").inc()
    registry.gauge("repro_fleet_sim_seconds_total").add(session_duration)

    bitrate = metrics.mean_bitrate_mbps
    registry.histogram("repro_fleet_bitrate_mbps",
                       BITRATE_BOUNDS).observe(bitrate)
    registry.histogram("repro_fleet_bitrate_mbps", BITRATE_BOUNDS,
                       {"scenario": scenario}).observe(bitrate)
    registry.histogram("repro_fleet_stall_seconds",
                       STALL_TIME_BOUNDS).observe(metrics.total_stall_time)
    registry.histogram("repro_fleet_stall_count",
                       STALL_COUNT_BOUNDS).observe(metrics.stall_count)
    if metrics.stall_count > 0:
        registry.counter("repro_fleet_stalled_sessions_total").inc()
    if metrics.startup_delay is not None:
        registry.histogram(
            "repro_fleet_startup_delay_seconds",
            STARTUP_BOUNDS).observe(metrics.startup_delay)
    if not draw.wifi_only:
        registry.histogram(
            "repro_fleet_cellular_mbytes",
            CELLULAR_MB_BOUNDS).observe(metrics.cellular_bytes / 1e6)
        registry.histogram(
            "repro_fleet_cellular_fraction",
            CELLULAR_FRACTION_BOUNDS).observe(metrics.cellular_fraction)
        registry.histogram(
            "repro_fleet_cellular_fraction", CELLULAR_FRACTION_BOUNDS,
            {"scenario": scenario}).observe(metrics.cellular_fraction)
    registry.histogram("repro_fleet_radio_energy_joules",
                       ENERGY_BOUNDS).observe(metrics.radio_energy)
    misses = int(scheduler_stats.get("deadline_misses", 0))
    registry.counter("repro_fleet_deadline_misses_total").inc(misses)
    registry.histogram("repro_fleet_deadline_misses",
                       MISS_BOUNDS).observe(misses)
    registry.histogram("repro_fleet_arrival_hour",
                       ARRIVAL_HOUR_BOUNDS).observe(draw.arrival_hour)


def _peak_rss_kb() -> int:
    """This process's peak RSS in KiB (0 where unavailable)."""
    try:
        import resource
    except ImportError:                                # pragma: no cover
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":                       # pragma: no cover
        peak /= 1024  # ru_maxrss is bytes on macOS, KiB on Linux
    return int(peak)


@contextmanager
def _scheduler_fault() -> Iterator[None]:
    """Break Algorithm 1 for the duration: every transfer start arms the
    deadline scheduler (tight window) and then disables *all* paths —
    the seeded §3.1 invariant violation the ``path-control`` checker
    exists to catch.  Forcing the arm makes the fault independent of
    whether the session's own deadlines would have activated MP-DASH,
    so a faulted session always yields ERROR verdicts.
    """
    from ..core.scheduler import DeadlineAwareScheduler

    orig = DeadlineAwareScheduler.on_transfer_start

    def faulty(scheduler, now, transfer, conn):
        if scheduler._pending is None:
            scheduler._pending = (transfer.total_bytes, 1.0)
        orig(scheduler, now, transfer, conn)
        if scheduler.active:  # Algorithm 1 broken: everything off
            for name in conn.path_names():
                conn.request_path_state(name, False)

    DeadlineAwareScheduler.on_transfer_start = faulty
    try:
        yield
    finally:
        DeadlineAwareScheduler.on_transfer_start = orig


def _run_shard(config: FleetConfig, shard: int,
               runner: Optional[Callable[[SessionConfig], Any]] = None,
               recorder: Optional[RecorderConfig] = None
               ) -> Dict[str, Any]:
    """Simulate one shard and return only its folded state.

    The worker-side entry point (module-level, picklable).  Per-session
    faults are isolated: a session that raises is counted as a failure
    (with a bounded error sample) and the shard continues, so one bad
    draw cannot void its 49 neighbours.  The return value is a plain
    JSON-ready dict — never result objects — which is what keeps parent
    memory independent of fleet size; with a ``recorder``, captured
    traces go straight from here to disk and only their summary records
    ride the wire.
    """
    workload = config.workload()
    run = runner if runner is not None else run_session
    rec = (ShardRecorder(recorder, fleet_key(config), shard)
           if recorder is not None else None)
    registry = MetricsRegistry()
    failures = 0
    completed = 0
    sim_seconds = 0.0
    errors: List[str] = []
    last_index = -1
    began = time.perf_counter()
    for index in config.shard_range(shard):
        draw = workload.draw(index)
        last_index = index
        cfg = session_config(config, draw)
        if rec is not None:
            cfg = replace(cfg, record_trace=True)
        try:
            if config.fault_session == index:
                with _scheduler_fault():
                    result = run(cfg)
            else:
                result = run(cfg)
        except Exception as exc:
            failures += 1
            registry.counter("repro_fleet_session_failures_total").inc()
            if len(errors) < SHARD_ERROR_SAMPLES:
                errors.append(f"session {index}: "
                              f"{type(exc).__name__}: {exc}")
            if rec is not None:
                rec.record_failure(index,
                                   f"{type(exc).__name__}: {exc}")
            continue
        fold_session(registry, draw, result.metrics,
                     dict(result.scheduler_stats), result.finished,
                     result.session_duration)
        completed += 1
        sim_seconds += result.session_duration
        if rec is not None:
            # The recorder judges every traced session; whatever its
            # attribution walker explained folds straight into the shard
            # registry, so root-cause histograms merge and resume exactly
            # like every other fleet metric.
            fold_attributions(registry, rec.observe(index, result))
    if rec is not None:
        rec.flush()
    return {"shard": shard, "sessions": completed, "failures": failures,
            "errors": errors, "error_total": failures,
            "sim_seconds": sim_seconds,
            "registry": registry.to_dict(),
            "elapsed": time.perf_counter() - began,
            "worker": os.getpid(), "peak_rss_kb": _peak_rss_kb(),
            "last_index": last_index,
            "recorder": rec.payload() if rec is not None else None}


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
def checkpoint_path(checkpoint_dir: str) -> str:
    return os.path.join(checkpoint_dir, CHECKPOINT_FILE)


def save_checkpoint(path: str, key: str, shards_done: int, sessions: int,
                    failures: int, sim_seconds: float, errors: List[str],
                    registry: MetricsRegistry, error_total: int = 0,
                    recorder_state: Optional[Dict[str, Any]] = None
                    ) -> None:
    """Atomically persist the population state through ``shards_done``.

    Temp file + rename (the ResultCache pattern): a campaign killed
    mid-write leaves the previous checkpoint intact, never a truncated
    one, so ``--resume`` always finds a loadable prefix.  The optional
    ``recorder_state`` (merged stats + anomaly records) rides along so a
    resumed campaign's triage view still covers the pre-kill prefix.
    """
    payload = {"version": CHECKPOINT_VERSION, "fleet_key": key,
               "shards_done": shards_done, "sessions": sessions,
               "failures": failures, "sim_seconds": sim_seconds,
               "errors": list(errors), "error_total": error_total,
               "registry": registry.to_dict()}
    if recorder_state is not None:
        payload["recorder"] = recorder_state
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    os.replace(tmp, path)


def load_checkpoint(path: str, key: str) -> Optional[Dict[str, Any]]:
    """Load a checkpoint for the campaign ``key``; None = start fresh.

    A missing or unreadable file is a clean start; a checkpoint written
    by a *different* campaign is a hard error — silently resuming someone
    else's population would corrupt both.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    found = payload.get("fleet_key")
    if found != key:
        raise ValueError(
            f"checkpoint at {path} belongs to fleet {found!r}, "
            f"not {key!r}; pick an empty --checkpoint-dir or drop --resume")
    return payload


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class FleetResult:
    """Everything one (possibly partial) campaign produced."""

    config: FleetConfig
    registry: MetricsRegistry
    sessions: int
    failures: int
    shards_done: int
    total_shards: int
    jobs: int
    wall_clock: float
    sim_seconds: float
    errors: List[str] = field(default_factory=list)
    checkpoint: Optional[str] = None
    #: Shards restored from a checkpoint rather than simulated this run.
    resumed_shards: int = 0
    #: True per-session failure count (``errors`` is a bounded sample).
    error_total: int = 0
    #: Merged flight-recorder stats (None when the recorder was off).
    recorder: Optional[Dict[str, Any]] = None
    #: Capture records from the flight recorder, in session order.
    anomalies: List[Dict[str, Any]] = field(default_factory=list)
    #: Recorder artifact root (anomaly ``artifact`` paths are relative
    #: to this).
    record_dir: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.shards_done >= self.total_shards

    @property
    def errors_dropped(self) -> int:
        """Failures beyond the bounded ``errors`` sample."""
        return max(0, self.error_total - len(self.errors))

    def triage(self, top: Optional[int] = None) -> List[Dict[str, Any]]:
        """Captured anomalies ranked worst-first (see
        :func:`~repro.obs.recorder.rank_anomalies`)."""
        return rank_anomalies(self.anomalies, top)

    def registry_json(self) -> str:
        """Canonical JSON of the population registry.

        The determinism contract's unit of comparison: byte-identical
        across worker counts and kill/resume boundaries for one config.
        """
        return json.dumps(self.registry.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def _quantile(self, name: str, q: float) -> Optional[float]:
        metric = self.registry.get(name)
        if isinstance(metric, Histogram) and metric.count:
            return metric.quantile(q)
        return None

    def _counter(self, name: str) -> float:
        metric = self.registry.get(name)
        return metric.value if metric is not None else 0.0

    def population(self) -> Dict[str, Any]:
        """Headline population statistics (None = no data folded yet)."""
        folded = self._counter("repro_fleet_sessions_total")
        stalled = self._counter("repro_fleet_stalled_sessions_total")
        return {
            "sessions": self.sessions,
            "failures": self.failures,
            "shards_done": self.shards_done,
            "total_shards": self.total_shards,
            "completed": self.completed,
            "sim_seconds": self.sim_seconds,
            "bitrate_p50_mbps": self._quantile(
                "repro_fleet_bitrate_mbps", 0.5),
            "bitrate_p95_mbps": self._quantile(
                "repro_fleet_bitrate_mbps", 0.95),
            "stalled_session_fraction": (stalled / folded if folded
                                         else None),
            "stall_seconds_p95": self._quantile(
                "repro_fleet_stall_seconds", 0.95),
            "startup_p50_seconds": self._quantile(
                "repro_fleet_startup_delay_seconds", 0.5),
            "cellular_fraction_p50": self._quantile(
                "repro_fleet_cellular_fraction", 0.5),
            "cellular_mbytes_p50": self._quantile(
                "repro_fleet_cellular_mbytes", 0.5),
            "radio_energy_p50_joules": self._quantile(
                "repro_fleet_radio_energy_joules", 0.5),
            "deadline_misses_total": int(self._counter(
                "repro_fleet_deadline_misses_total")),
            "unfinished_sessions": int(self._counter(
                "repro_fleet_sessions_unfinished_total")),
            "wifi_only_sessions": int(self._counter(
                "repro_fleet_wifi_only_sessions_total")),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {"fleet_key": fleet_key(self.config),
                "sessions": self.sessions, "failures": self.failures,
                "shards_done": self.shards_done,
                "total_shards": self.total_shards,
                "completed": self.completed, "jobs": self.jobs,
                "wall_clock": self.wall_clock,
                "sim_seconds": self.sim_seconds,
                "resumed_shards": self.resumed_shards,
                "checkpoint": self.checkpoint, "errors": list(self.errors),
                "error_total": self.error_total,
                "errors_dropped": self.errors_dropped,
                "recorder": self.recorder,
                "anomalies": list(self.anomalies),
                "population": self.population(),
                "registry": self.registry.to_dict()}

    def export_report(self, path: str, triage_top: int = 0) -> None:
        """Write the self-contained HTML population report to ``path``.

        With ``triage_top > 0``, the worst ``triage_top`` captured
        anomalies that have trace artifacts are additionally rendered as
        mini session reports (``anomaly-<index>.html`` beside ``path``,
        via the offline :func:`~repro.obs.report.session_report_html`
        pipeline) and linked from the fleet report's anomalies panel.
        """
        from ..obs.recorder import render_anomaly_reports
        from ..obs.report import fleet_report_html, write_report

        links: Dict[int, str] = {}
        if triage_top > 0 and self.anomalies and self.record_dir:
            links = render_anomaly_reports(
                self.record_dir, self.triage(triage_top),
                os.path.dirname(os.path.abspath(path)))
        write_report(path, fleet_report_html(self, anomaly_links=links))


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def _pool_run_shards(config: FleetConfig, start_shard: int, end_shard: int,
                     jobs: int, retries: int,
                     runner: Optional[Callable[[SessionConfig], Any]],
                     commit: Callable[[Dict[str, Any]], None],
                     recorder: Optional[RecorderConfig] = None) -> None:
    """Fan shards out over a process pool, committing strictly in order.

    At most ``jobs`` shards are in flight; results that finish out of
    order wait in a small buffer until their predecessors commit, so the
    commit sequence — and therefore the merged registry — is identical
    to the serial path's.  The buffer holds at most one window of shard
    payloads, keeping parent memory bounded regardless of fleet size.

    A worker hard-crash (BrokenProcessPool) fails every in-flight
    future; completed-exceptionally shards are charged an attempt and
    retried on a fresh pool, in-flight ones are requeued uncharged.  A
    shard that exhausts ``retries`` raises — skipping a shard would
    silently bias the population — and the last checkpoint still covers
    everything committed before it.
    """
    to_submit = list(range(start_shard, end_shard))
    attempts: Dict[int, int] = {}
    buffered: Dict[int, Dict[str, Any]] = {}
    futures: Dict[Any, int] = {}
    next_commit = start_shard
    max_workers = min(jobs, end_shard - start_shard)
    pool = ProcessPoolExecutor(max_workers=max_workers,
                               mp_context=_pool_context())
    try:
        while next_commit < end_shard:
            while next_commit in buffered:
                commit(buffered.pop(next_commit))
                next_commit += 1
            if next_commit >= end_shard:
                break
            while to_submit and len(futures) < max_workers:
                shard = to_submit[0]
                attempts[shard] = attempts.get(shard, 0) + 1
                try:
                    future = pool.submit(_run_shard, config, shard,
                                         runner, recorder)
                except BrokenProcessPool:
                    attempts[shard] -= 1
                    pool.shutdown(wait=False)
                    pool = ProcessPoolExecutor(max_workers=max_workers,
                                               mp_context=_pool_context())
                    continue
                futures[future] = shard
                to_submit.pop(0)
            if not futures:
                continue
            done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                shard = futures.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool as exc:
                    broken = True
                    if attempts[shard] > retries:
                        raise RuntimeError(
                            f"fleet shard {shard} died with the worker "
                            f"pool after {attempts[shard]} attempt(s): "
                            f"{exc}") from exc
                    to_submit.insert(0, shard)
                    continue
                except Exception as exc:
                    if attempts[shard] > retries:
                        raise RuntimeError(
                            f"fleet shard {shard} failed after "
                            f"{attempts[shard]} attempt(s): "
                            f"{type(exc).__name__}: {exc}") from exc
                    to_submit.insert(0, shard)
                    continue
                buffered[shard] = payload
            if broken:
                for future in list(futures):
                    shard = futures.pop(future)
                    attempts[shard] -= 1  # never completed: uncharged
                    to_submit.insert(0, shard)
                to_submit.sort()
                pool.shutdown(wait=False)
                pool = ProcessPoolExecutor(max_workers=max_workers,
                                           mp_context=_pool_context())
    finally:
        pool.shutdown(wait=False)


def run_fleet(config: FleetConfig, jobs: int = 1,
              checkpoint_dir: Optional[str] = None,
              checkpoint_every: int = 10, resume: bool = False,
              stop_after: Optional[int] = None, retries: int = 1,
              bus: Optional[EventBus] = None,
              runner: Optional[Callable[[SessionConfig], Any]] = None,
              recorder: Optional[RecorderConfig] = None,
              ledger: Optional[str] = None) -> FleetResult:
    """Run (or resume) one fleet campaign.

    ``jobs=1`` simulates shards in-process; ``jobs>1`` fans them out over
    a process pool with in-order merging, so the population registry is
    byte-identical either way.  ``checkpoint_dir`` enables atomic
    progress checkpoints every ``checkpoint_every`` shards; ``resume``
    restores the matching checkpoint (an error if the directory holds a
    different campaign's).  ``stop_after`` bounds this invocation to that
    many *newly simulated* shards — the deterministic stand-in for a
    mid-campaign kill in tests and smoke runs.  ``runner`` replaces
    :func:`~repro.experiments.runner.run_session` per session (picklable
    module-level callable when ``jobs > 1``).

    ``recorder`` arms the flight recorder: workers judge every session
    against the capture triggers, write triggered traces as gzip
    artifacts under ``recorder.artifact_dir``, and the parent merges
    stats and anomaly records, republishes them as
    :class:`~repro.obs.events.FleetWorkerHeartbeat` /
    :class:`~repro.obs.events.FleetSessionCaptured` bus events, and
    maintains the campaign's triage manifest.  Recording is purely
    observational — it never changes ``fleet_key`` or the population
    registry.

    ``ledger`` appends the finished campaign's headline record
    (population quantiles, miss totals, sim-per-wall, registry digest)
    to the run ledger at that path (see :mod:`repro.obs.ledger`).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1: {jobs!r}")
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1: "
                         f"{checkpoint_every!r}")
    if stop_after is not None and stop_after < 1:
        raise ValueError(f"stop_after must be >= 1: {stop_after!r}")
    if retries < 0:
        raise ValueError(f"retries cannot be negative: {retries!r}")
    if resume and checkpoint_dir is None:
        raise ValueError("resume requires checkpoint_dir")
    if bus is None:
        bus = EventBus()
    start = time.perf_counter()

    def clock() -> float:
        return time.perf_counter() - start

    key = fleet_key(config)
    total = config.total_shards
    registry = MetricsRegistry()
    sessions = 0
    failures = 0
    sim_seconds = 0.0
    errors: List[str] = []
    error_total = 0
    shards_done = 0
    resumed_shards = 0
    rec_stats = empty_stats() if recorder is not None else None
    anomalies: List[Dict[str, Any]] = []
    ckpt_file: Optional[str] = None
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        ckpt_file = checkpoint_path(checkpoint_dir)
        if resume:
            payload = load_checkpoint(ckpt_file, key)
            if payload is not None:
                registry = MetricsRegistry.from_dict(payload["registry"])
                shards_done = int(payload["shards_done"])
                sessions = int(payload["sessions"])
                failures = int(payload["failures"])
                sim_seconds = float(payload["sim_seconds"])
                errors = list(payload.get("errors", []))
                error_total = int(payload.get("error_total", failures))
                resumed_shards = shards_done
                restored = payload.get("recorder")
                if recorder is not None and restored is not None:
                    merge_stats(rec_stats, restored.get("stats", {}))
                    anomalies = list(restored.get("records", []))

    end_shard = total
    if stop_after is not None:
        end_shard = min(total, shards_done + stop_after)
    bus.publish(FleetStarted(0.0, config.sessions, total, jobs))

    uncheckpointed = 0

    def recorder_state() -> Optional[Dict[str, Any]]:
        if recorder is None:
            return None
        return {"stats": rec_stats, "records": anomalies}

    def commit(payload: Dict[str, Any]) -> None:
        nonlocal sessions, failures, sim_seconds, shards_done
        nonlocal uncheckpointed, error_total
        registry.merge(MetricsRegistry.from_dict(payload["registry"]))
        sessions += payload["sessions"]
        failures += payload["failures"]
        sim_seconds += payload["sim_seconds"]
        error_total += int(payload.get("error_total",
                                       payload["failures"]))
        for sample in payload["errors"]:
            if len(errors) >= MAX_ERROR_SAMPLES:
                break
            errors.append(sample)
        shards_done += 1
        uncheckpointed += 1
        captured = 0
        rec_payload = payload.get("recorder")
        if recorder is not None and rec_payload is not None:
            merge_stats(rec_stats, rec_payload["stats"])
            anomalies.extend(rec_payload["records"])
            captured = int(rec_payload["stats"].get("captured", 0))
        bus.publish(FleetShardCompleted(
            clock(), payload["shard"], payload["sessions"],
            payload["failures"], payload["elapsed"]))
        bus.publish(FleetWorkerHeartbeat(
            clock(), worker=int(payload.get("worker", 0)),
            shard=payload["shard"], sessions=payload["sessions"],
            failures=payload["failures"],
            sim_seconds=payload["sim_seconds"],
            elapsed=payload["elapsed"],
            peak_rss_kb=int(payload.get("peak_rss_kb", 0)),
            last_index=int(payload.get("last_index", -1)),
            captured=captured))
        if recorder is not None and rec_payload is not None:
            for record in rec_payload["records"]:
                bus.publish(FleetSessionCaptured(
                    clock(), session=record["index"],
                    shard=record["shard"], reason=record["reason"],
                    score=float(record.get("score") or 0.0),
                    artifact=record.get("artifact") or ""))
        if ckpt_file is not None and (uncheckpointed >= checkpoint_every
                                      or shards_done == end_shard):
            save_checkpoint(ckpt_file, key, shards_done, sessions,
                            failures, sim_seconds, errors, registry,
                            error_total=error_total,
                            recorder_state=recorder_state())
            uncheckpointed = 0
            bus.publish(FleetCheckpointSaved(clock(), shards_done,
                                             ckpt_file))
            if recorder is not None:
                save_manifest(recorder.artifact_dir, key, rec_stats,
                              anomalies)

    if shards_done < end_shard:
        if jobs == 1:
            for shard in range(shards_done, end_shard):
                commit(_run_shard(config, shard, runner, recorder))
        else:
            _pool_run_shards(config, shards_done, end_shard, jobs,
                             retries, runner, commit, recorder)

    if recorder is not None:
        save_manifest(recorder.artifact_dir, key, rec_stats, anomalies)
    wall = time.perf_counter() - start
    bus.publish(FleetCompleted(wall, sessions, failures, shards_done))
    result = FleetResult(
        config=config, registry=registry, sessions=sessions,
        failures=failures, shards_done=shards_done, total_shards=total,
        jobs=jobs, wall_clock=wall, sim_seconds=sim_seconds,
        errors=errors, checkpoint=ckpt_file,
        resumed_shards=resumed_shards, error_total=error_total,
        recorder=rec_stats, anomalies=anomalies,
        record_dir=(recorder.artifact_dir if recorder is not None
                    else None))
    if ledger is not None:
        from ..obs.ledger import RunLedger, fleet_entry

        RunLedger(ledger).append(fleet_entry(result))
    return result
