"""Scheme comparisons: baseline vs MP-DASH (duration / rate deadlines).

Every evaluation figure compares the same session under vanilla MPTCP and
under MP-DASH with the two deadline settings.  :func:`run_schemes` executes
that trio (or any subset) from one base config, and
:class:`SchemeComparison` exposes the savings the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..analysis.metrics import bitrate_reduction, savings
from .configs import BASELINE, SCHEMES, SessionConfig
from .runner import SessionResult, run_session


@dataclass
class SchemeComparison:
    """Results of one workload under several schemes."""

    results: Dict[str, SessionResult]

    @property
    def baseline(self) -> SessionResult:
        try:
            return self.results[BASELINE]
        except KeyError:
            raise KeyError("comparison has no baseline scheme") from None

    def cellular_savings(self, scheme: str) -> float:
        """Fraction of baseline cellular bytes saved by ``scheme``."""
        return savings(self.baseline.metrics.cellular_bytes,
                       self.results[scheme].metrics.cellular_bytes)

    def energy_savings(self, scheme: str) -> float:
        """Fraction of baseline radio energy (both radios) saved."""
        return savings(self.baseline.metrics.radio_energy,
                       self.results[scheme].metrics.radio_energy)

    def cellular_energy_savings(self, scheme: str) -> float:
        """Fraction of baseline *cellular-radio* energy saved.

        Reported alongside total radio savings because MP-DASH shifts bytes
        onto WiFi, whose longer busy time partially offsets the LTE savings
        in the total; the cellular radio itself always benefits.
        """
        return savings(self.baseline.metrics.cellular_energy,
                       self.results[scheme].metrics.cellular_energy)

    def bitrate_reduction(self, scheme: str) -> float:
        """Playback bitrate loss vs baseline (negative = gain)."""
        return bitrate_reduction(self.baseline.metrics,
                                 self.results[scheme].metrics)

    def stalls(self, scheme: str) -> int:
        return self.results[scheme].metrics.stall_count


def run_schemes(base: SessionConfig,
                schemes: Optional[Iterable[str]] = None) -> SchemeComparison:
    """Run ``base`` under each scheme (default: baseline, duration, rate)."""
    chosen = tuple(schemes) if schemes is not None else SCHEMES
    results = {scheme: run_session(base.with_scheme(scheme))
               for scheme in chosen}
    return SchemeComparison(results)
