"""Scheme comparisons: baseline vs MP-DASH (duration / rate deadlines).

Every evaluation figure compares the same session under vanilla MPTCP and
under MP-DASH with the two deadline settings.  :func:`run_schemes` executes
that trio (or any subset) from one base config — through the
:mod:`~repro.experiments.sweep` engine, so the runs parallelize
(``jobs``) and reuse cached results (``cache_dir``) — and
:class:`SchemeComparison` exposes the savings the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..analysis.metrics import bitrate_reduction, savings
from .configs import BASELINE, SCHEMES, SessionConfig
from .sweep import SessionSummary, run_sweep


@dataclass
class SchemeComparison:
    """Results of one workload under several schemes."""

    results: Dict[str, SessionSummary]

    @property
    def baseline(self) -> SessionSummary:
        try:
            return self.results[BASELINE]
        except KeyError:
            raise KeyError("comparison has no baseline scheme") from None

    def cellular_savings(self, scheme: str) -> float:
        """Fraction of baseline cellular bytes saved by ``scheme``."""
        return savings(self.baseline.metrics.cellular_bytes,
                       self.results[scheme].metrics.cellular_bytes)

    def energy_savings(self, scheme: str) -> float:
        """Fraction of baseline radio energy (both radios) saved."""
        return savings(self.baseline.metrics.radio_energy,
                       self.results[scheme].metrics.radio_energy)

    def cellular_energy_savings(self, scheme: str) -> float:
        """Fraction of baseline *cellular-radio* energy saved.

        Reported alongside total radio savings because MP-DASH shifts bytes
        onto WiFi, whose longer busy time partially offsets the LTE savings
        in the total; the cellular radio itself always benefits.
        """
        return savings(self.baseline.metrics.cellular_energy,
                       self.results[scheme].metrics.cellular_energy)

    def bitrate_reduction(self, scheme: str) -> float:
        """Playback bitrate loss vs baseline (negative = gain)."""
        return bitrate_reduction(self.baseline.metrics,
                                 self.results[scheme].metrics)

    def stalls(self, scheme: str) -> int:
        return self.results[scheme].metrics.stall_count


def run_schemes(base: SessionConfig,
                schemes: Optional[Iterable[str]] = None,
                jobs: int = 1,
                cache_dir: Optional[str] = None) -> SchemeComparison:
    """Run ``base`` under each scheme (default: baseline, duration, rate).

    Executes through :func:`~repro.experiments.sweep.run_sweep`; pass
    ``jobs`` to run the schemes concurrently and ``cache_dir`` to reuse
    previously computed sessions.  A comparison is only meaningful when
    every scheme ran, so any failed run raises here instead of being
    returned as a :class:`~repro.experiments.sweep.RunFailure`.
    """
    chosen = tuple(schemes) if schemes is not None else SCHEMES
    sweep = run_sweep([base.with_scheme(scheme) for scheme in chosen],
                      jobs=jobs, cache_dir=cache_dir)
    results = {}
    for scheme, run in zip(chosen, sweep.runs):
        if run.failure is not None:
            raise RuntimeError(
                f"scheme {scheme!r} failed ({run.failure.kind}): "
                f"{run.failure.error}")
        results[scheme] = run.summary
    return SchemeComparison(results)
