"""End-to-end experiment runners.

:func:`run_session` executes one adaptive-streaming session described by a
:class:`~repro.experiments.configs.SessionConfig` and returns a
:class:`SessionResult` bundling the metrics, the analyzer, and the raw
logs.  :func:`run_file_download` executes one deadline-bounded file
transfer (the §7.2 scheduler evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import IO, Dict, List, Optional, Union

from ..abr import make_abr
from ..analysis.analyzer import MultipathVideoAnalyzer
from ..analysis.metrics import SessionMetrics
from ..core.adapter import MpDashAdapter
from ..core.policy import prefer_wifi
from ..core.socket_api import MpDashSocket
from ..dash.http import HttpClient
from ..dash.player import DashPlayer
from ..dash.server import DashServer
from ..energy.devices import DEVICES
from ..energy.model import EnergyBreakdown, session_energy
from ..mptcp.connection import MptcpConnection
from ..net.link import cellular_path, wifi_path
from ..net.simulator import Simulator
from ..obs.check import Checker, CheckReport, InvariantMonitor
from ..obs.events import SessionClosed, TraceEvent
from ..obs.metrics import (MetricsRegistry, PathSampler,
                           SessionMetricsCollector)
from ..obs.profile import ProfiledBus, Profiler
from ..obs.spans import Span, SpanBuilder
from ..obs.trace_export import TraceMeta, TraceRecorder, dump_jsonl
from ..workloads.videos import video_asset
from .configs import FileDownloadConfig, SessionConfig


@dataclass
class SessionResult:
    """Everything produced by one streaming session."""

    config: SessionConfig
    metrics: SessionMetrics
    analyzer: MultipathVideoAnalyzer
    finished: bool
    session_duration: float
    connection: MptcpConnection
    player: DashPlayer
    socket: Optional[MpDashSocket] = None
    adapter: Optional[MpDashAdapter] = None
    #: The session's full typed event stream; populated when the config
    #: set ``record_trace`` (see :mod:`repro.obs`).
    events: Optional[List[TraceEvent]] = None
    #: The standard metrics registry; populated when the config set
    #: ``collect_metrics`` (see :mod:`repro.obs.metrics`).
    metrics_registry: Optional[MetricsRegistry] = None
    #: The causal span tree; populated when the config set
    #: ``collect_spans`` (see :mod:`repro.obs.spans`).
    spans: Optional[List[Span]] = None
    #: Wall-clock attribution; populated when ``run_session`` was called
    #: with ``profile=True`` (see :mod:`repro.obs.profile`).
    profile: Optional[Profiler] = None
    #: Invariant verdicts; populated when ``run_session`` was called with
    #: ``check=True`` (see :mod:`repro.obs.check`).
    check_report: Optional[CheckReport] = None

    @property
    def trace_meta(self) -> TraceMeta:
        return TraceMeta(
            session_duration=self.session_duration,
            activity_bin=self.connection.activity.bin_width,
            steady_state_fraction=self.config.steady_state_fraction,
            device=self.config.device)

    def export_trace(self, path_or_file: Union[str, IO[str]]) -> None:
        """Dump the recorded event stream as a JSONL trace."""
        if self.events is None:
            raise ValueError(
                "session was run without record_trace=True; no events "
                "to export")
        dump_jsonl(path_or_file, self.events, self.trace_meta)

    @property
    def scheduler_stats(self) -> Dict[str, int]:
        if self.socket is None:
            return {}
        scheduler = self.socket.scheduler
        return {
            "activations": scheduler.activations,
            "deadline_misses": scheduler.deadline_misses,
            "enable_events": scheduler.enable_events,
            "disable_events": scheduler.disable_events,
        }


def _build_paths(config) -> list:
    paths = []
    if config.wifi_trace is not None:
        paths.append(wifi_path(trace=config.wifi_trace,
                               rtt_ms=config.wifi_rtt_ms))
    else:
        paths.append(wifi_path(bandwidth_mbps=config.wifi_mbps,
                               rtt_ms=config.wifi_rtt_ms))
    wifi_only = getattr(config, "wifi_only", False)
    if not wifi_only:
        if config.lte_trace is not None:
            lte = cellular_path(trace=config.lte_trace,
                                rtt_ms=config.lte_rtt_ms)
        else:
            lte = cellular_path(bandwidth_mbps=config.lte_mbps,
                                rtt_ms=config.lte_rtt_ms)
        throttle = getattr(config, "lte_throttle", None)
        if throttle is not None:
            lte.throttle = throttle
        paths.append(lte)
    return paths


def run_session(config: SessionConfig, profile: bool = False,
                check: bool = False,
                checkers: Optional[List[Checker]] = None,
                report: Optional[str] = None,
                ledger: Optional[str] = None) -> SessionResult:
    """Simulate one streaming session to completion (or the time cap).

    ``profile=True`` swaps in a :class:`~repro.obs.profile.ProfiledBus`
    and arms the simulator-loop profiler; it is a runner argument rather
    than a config field because it changes what is *measured about* the
    run, never the run itself (sweep cache keys must not depend on it).
    ``check=True`` attaches an :class:`~repro.obs.check.InvariantMonitor`
    (the stock battery, or ``checkers``) on the same terms.  ``report``
    names an HTML file to render via
    :func:`~repro.obs.report.session_report_html` when the session ends;
    it implies trace recording and, being a pure function of the trace,
    produces the same bytes as rendering offline from the exported JSONL.
    ``ledger`` appends the finished session's headline record to the
    run ledger at that path (see :mod:`repro.obs.ledger`) — like
    ``profile``, a measurement knob that never changes the run itself.
    """
    profiler = Profiler() if profile else None
    sim = Simulator(bus=ProfiledBus(profiler) if profile else None)
    sim.profiler = profiler
    record = config.record_trace or report is not None
    recorder = TraceRecorder(sim.bus) if record else None
    monitor = None
    if check or checkers is not None:
        monitor = InvariantMonitor(checkers, bus=sim.bus)
    collector = None
    if config.collect_metrics:
        collector = SessionMetricsCollector(
            sim.bus, device=config.device)
    span_builder = SpanBuilder(sim.bus) if config.collect_spans else None
    paths = _build_paths(config)
    connection = MptcpConnection(
        sim, paths, scheduler=config.mptcp_scheduler,
        tick_interval=config.tick_interval,
        signaling_delay=config.signaling_delay,
        subflow_reestablish=config.subflow_reestablish,
        kernel=config.kernel)
    if config.collect_metrics:
        PathSampler(sim, connection)

    server = DashServer()
    asset = video_asset(config.video, chunk_duration=config.chunk_duration,
                        duration=config.video_duration)
    server.host(asset)
    manifest = server.manifest(asset.name)
    client = HttpClient(connection, server.resolve)

    abr = make_abr(config.abr, **config.abr_kwargs)
    socket = None
    adapter = None
    if config.mpdash and not config.wifi_only:
        socket = MpDashSocket(connection, prefer_wifi(), alpha=config.alpha)
        adapter = MpDashAdapter(socket,
                                deadline_mode=config.deadline_mode,
                                extension_enabled=config.extension_enabled,
                                phi_fraction=config.phi_fraction)

    player = DashPlayer(sim, client, manifest, abr, addon=adapter,
                        buffer_capacity=config.buffer_capacity,
                        playout=("event" if config.kernel == "fast"
                                 else "tick"))
    player.start()

    cap = config.sim_deadline
    started = perf_counter()
    while not player.finished and sim.now < cap:
        sim.run(until=min(sim.now + 5.0, cap))
    connection.close()
    # Terminal event: closes any open stall and timestamps session end.
    sim.bus.publish(SessionClosed(sim.now))
    if profiler is not None:
        profiler.wall_clock = perf_counter() - started
    session_duration = sim.now

    device = DEVICES[config.device]
    energy = session_energy(connection.activity, device, session_duration)
    analyzer = MultipathVideoAnalyzer(connection.activity, player.log,
                                      session_duration, device)
    metrics = analyzer.metrics(config.steady_state_fraction)
    result = SessionResult(config=config, metrics=metrics,
                           analyzer=analyzer,
                           finished=player.finished,
                           session_duration=session_duration,
                           connection=connection, player=player,
                           socket=socket, adapter=adapter,
                           events=recorder.events if recorder else None,
                           metrics_registry=(collector.registry
                                             if collector else None),
                           spans=(span_builder.spans if span_builder
                                  else None),
                           profile=profiler,
                           check_report=(monitor.report() if monitor
                                         else None))
    if report is not None:
        from ..obs.report import session_report_html, write_report
        from ..obs.trace_export import Trace
        write_report(report, session_report_html(
            Trace(meta=result.trace_meta, events=result.events or [])))
    if ledger is not None:
        from ..obs.ledger import RunLedger, session_entry

        RunLedger(ledger).append(session_entry(
            result, wall_clock=perf_counter() - started))
    return result


@dataclass
class FileDownloadResult:
    """Outcome of one deadline-bounded file transfer."""

    config: FileDownloadConfig
    duration: float
    bytes_per_path: Dict[str, float]
    energy: Dict[str, EnergyBreakdown]
    missed_deadline: bool

    @property
    def cellular_bytes(self) -> float:
        return self.bytes_per_path.get("cellular", 0.0)

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes_per_path.values())

    @property
    def cellular_fraction(self) -> float:
        total = self.total_bytes
        return self.cellular_bytes / total if total > 0 else 0.0

    @property
    def radio_energy(self) -> float:
        return self.energy["total"].total


def run_file_download(config: FileDownloadConfig) -> FileDownloadResult:
    """Download ``size`` bytes under a deadline, with or without MP-DASH."""
    sim = Simulator()
    paths = _build_paths(config)
    connection = MptcpConnection(
        sim, paths, scheduler=config.mptcp_scheduler,
        tick_interval=config.tick_interval,
        signaling_delay=config.signaling_delay,
        subflow_reestablish=config.subflow_reestablish,
        kernel=config.kernel)

    socket = None
    if config.mpdash:
        socket = MpDashSocket(connection, prefer_wifi(), alpha=config.alpha)
        socket.mp_dash_enable(config.size, config.deadline)

    done = {"finished_at": None}

    def on_complete(_transfer) -> None:
        done["finished_at"] = sim.now

    transfer = connection.start_transfer(config.size, tag="file",
                                         on_complete=on_complete)
    cap = config.deadline * 10 + 60.0
    while done["finished_at"] is None and sim.now < cap:
        sim.run(until=min(sim.now + 1.0, cap))
    connection.close()
    if done["finished_at"] is None:
        raise RuntimeError(
            f"file download did not finish within {cap:.0f}s of simulated "
            f"time — paths too slow for size {config.size}")
    duration = done["finished_at"]

    # Account energy over the transfer window plus one LTE tail.
    device = DEVICES[config.device]
    horizon = duration + device.lte.tail_time
    energy = session_energy(connection.activity, device, horizon)
    return FileDownloadResult(
        config=config, duration=duration,
        bytes_per_path=dict(transfer.per_path),
        energy=energy, missed_deadline=duration > config.deadline)
