"""Experiment harness: configs, runners, sweeps, comparisons, tables."""

from .compare import SchemeComparison, run_schemes
from .configs import (BASELINE, DURATION, FileDownloadConfig, RATE, SCHEMES,
                      SessionConfig)
from .runner import (FileDownloadResult, SessionResult, run_file_download,
                     run_session)
from .sweep import (DownloadSummary, ResultCache, RunFailure, SessionSummary,
                    SweepResult, SweepRun, config_key, expand_grid, run_sweep,
                    summarize_download, summarize_session)
from .tables import format_table, joules, mb, mbps_str, pct, sweep_table

__all__ = [
    "BASELINE", "DURATION", "DownloadSummary", "FileDownloadConfig",
    "FileDownloadResult", "RATE", "ResultCache", "RunFailure", "SCHEMES",
    "SchemeComparison", "SessionConfig", "SessionResult", "SessionSummary",
    "SweepResult", "SweepRun", "config_key", "expand_grid", "format_table",
    "joules", "mb", "mbps_str", "pct", "run_file_download", "run_schemes",
    "run_session", "run_sweep", "summarize_download", "summarize_session",
    "sweep_table",
]
