"""Experiment harness: configs, runners, sweeps, comparisons, tables."""

from .compare import SchemeComparison, run_schemes
from .configs import (BASELINE, DURATION, FileDownloadConfig, RATE, SCHEMES,
                      SessionConfig)
from .fleet import (FleetConfig, FleetResult, fleet_key, fold_session,
                    run_fleet, session_config)
from .runner import (FileDownloadResult, SessionResult, run_file_download,
                     run_session)
from .sweep import (DownloadSummary, ResultCache, RunFailure, SessionSummary,
                    SweepResult, SweepRun, config_key, expand_grid, run_sweep,
                    summarize_download, summarize_session)
from .tables import (fleet_table, format_table, joules, mb, mbps_str, pct,
                     sweep_table)

__all__ = [
    "BASELINE", "DURATION", "DownloadSummary", "FileDownloadConfig",
    "FileDownloadResult", "FleetConfig", "FleetResult", "RATE",
    "ResultCache", "RunFailure", "SCHEMES",
    "SchemeComparison", "SessionConfig", "SessionResult", "SessionSummary",
    "SweepResult", "SweepRun", "config_key", "expand_grid", "fleet_key",
    "fleet_table", "fold_session", "format_table",
    "joules", "mb", "mbps_str", "pct", "run_file_download", "run_fleet",
    "run_schemes", "run_session", "run_sweep", "session_config",
    "summarize_download", "summarize_session", "sweep_table",
]
