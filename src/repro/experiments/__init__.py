"""Experiment harness: configs, runners, scheme comparisons, tables."""

from .compare import SchemeComparison, run_schemes
from .configs import (BASELINE, DURATION, FileDownloadConfig, RATE, SCHEMES,
                      SessionConfig)
from .runner import (FileDownloadResult, SessionResult, run_file_download,
                     run_session)
from .tables import format_table, joules, mb, mbps_str, pct

__all__ = [
    "BASELINE", "DURATION", "FileDownloadConfig", "FileDownloadResult",
    "RATE", "SCHEMES", "SchemeComparison", "SessionConfig", "SessionResult",
    "format_table", "joules", "mb", "mbps_str", "pct", "run_file_download",
    "run_schemes", "run_session",
]
