"""The MP-DASH video adapter (§5).

A lightweight add-on that makes an off-the-shelf DASH algorithm
multipath-friendly.  It sits between the rate-adaptation logic and the
MP-DASH scheduler and does three things per chunk:

1. **Informs the scheduler** of the chunk's size (read from Content-Length)
   and its deadline, computed by the duration-based or rate-based scheme
   and relaxed by *deadline extension* when the buffer is above Φ.
2. **Guards robustness**: below the low-buffer threshold Ω (initial
   buffering, blackout recovery) the scheduler stays disabled and MPTCP
   runs vanilla with every path available.
3. **Feeds the player** the transport's aggregate multipath throughput so
   throughput-based algorithms don't under-estimate capacity while the
   cellular path is administratively off.

Φ and Ω depend on the algorithm category:

* throughput-based (§5.2.1): Φ = 80% of buffer capacity; Ω = T − T′ with
  T = 2 × buffer capacity (time to be consumed) and T′ the seconds of
  lowest-bitrate content downloadable in T at the current estimate (time to
  be supplied), floored at 40% of capacity.
* buffer-based (§5.2.2): Φ = capacity − one chunk duration; the scheduler
  is armed only once the player sits at the highest bitrate the network
  sustains, and Ω = e_l + one chunk duration where e_l is the lowest buffer
  level of the current encoding bitrate in BBA's rate map.
* hybrid (§5.2.3): reuses the throughput-based rules, as the paper's MPC
  sketch prescribes.
"""

from __future__ import annotations

from typing import Optional

from ..abr.base import BUFFER_BASED
from ..dash.events import ChunkRecord
from ..dash.player import DashPlayer, PlayerAddon
from ..obs.events import DeadlineExtended
from .deadlines import RATE_BASED, compute_deadline, extend_deadline
from .socket_api import MpDashSocket


class MpDashAdapter(PlayerAddon):
    """Per-chunk glue between a DASH player and the MP-DASH scheduler."""

    def __init__(self, socket: MpDashSocket,
                 deadline_mode: str = RATE_BASED,
                 extension_enabled: bool = True,
                 phi_fraction: Optional[float] = None,
                 omega_floor_fraction: float = 0.4,
                 consumption_window_multiplier: float = 2.0):
        """``phi_fraction`` overrides the category rule for Φ (as a fraction
        of buffer capacity) — used by the ablation benches.  The other two
        knobs parameterize the §5.2.1 Ω rule (defaults are the paper's)."""
        self.socket = socket
        self.deadline_mode = deadline_mode
        self.extension_enabled = extension_enabled
        self.phi_fraction = phi_fraction
        self.omega_floor_fraction = omega_floor_fraction
        self.consumption_window_multiplier = consumption_window_multiplier
        self.armed_count = 0
        self.skipped_count = 0

    # ------------------------------------------------------------------
    # PlayerAddon hooks
    # ------------------------------------------------------------------
    def throughput_override(self, player: DashPlayer) -> Optional[float]:
        return self.socket.aggregate_throughput()

    def on_chunk_request(self, player: DashPlayer, level: int,
                         size: float) -> Optional[float]:
        if not self._should_arm(player, level):
            self.skipped_count += 1
            # Clear any stale pending/active activation so it cannot bind
            # to this (deliberately unarmed) chunk's transfer.
            self.socket.mp_dash_disable()
            return None
        deadline = self._deadline(player, level, size)
        self.socket.mp_dash_enable(size, deadline)
        self.armed_count += 1
        return deadline

    def on_chunk_downloaded(self, player: DashPlayer,
                            record: ChunkRecord) -> None:
        """Nothing to do: the scheduler self-deactivates per chunk."""

    # ------------------------------------------------------------------
    # Deadline computation
    # ------------------------------------------------------------------
    def _deadline(self, player: DashPlayer, level: int, size: float) -> float:
        nominal = player.manifest.level(level).bitrate
        deadline = compute_deadline(self.deadline_mode, size,
                                    player.manifest.chunk_duration, nominal)
        if self.extension_enabled:
            extended = extend_deadline(deadline, player.buffer.level,
                                       self.phi(player))
            if extended != deadline:
                player.bus.publish(DeadlineExtended(
                    player.sim.now, deadline, extended,
                    player.buffer.level))
            deadline = extended
        return deadline

    def phi(self, player: DashPlayer) -> float:
        """The deadline-extension threshold Φ, in buffer seconds."""
        capacity = player.buffer.capacity
        if self.phi_fraction is not None:
            return self.phi_fraction * capacity
        if player.abr.category == BUFFER_BASED:
            return capacity - player.manifest.chunk_duration
        return 0.8 * capacity

    # ------------------------------------------------------------------
    # The low-buffer guard Ω
    # ------------------------------------------------------------------
    def _should_arm(self, player: DashPlayer, level: int) -> bool:
        if player.in_startup:
            return False
        if player.abr.category == BUFFER_BASED:
            return self._buffer_based_guard(player, level)
        return player.buffer.level >= self.omega_throughput_based(player)

    def omega_throughput_based(self, player: DashPlayer) -> float:
        """Ω for throughput-based (and hybrid) algorithms (§5.2.1)."""
        capacity = player.buffer.capacity
        window = self.consumption_window_multiplier * capacity
        estimate = self.socket.aggregate_throughput()
        if estimate is None:
            supplied = 0.0
        else:
            lowest = player.manifest.bitrates()[0]
            supplied = estimate * window / lowest
        omega = max(window - supplied, 0.0)
        return max(omega, self.omega_floor_fraction * capacity)

    def _buffer_based_guard(self, player: DashPlayer, level: int) -> bool:
        """§5.2.2: arm only at the highest sustainable bitrate, with the
        buffer clear of the level's lower map boundary."""
        estimate = self.socket.aggregate_throughput()
        if estimate is None:
            return False
        bitrates = player.manifest.bitrates()
        sustainable = 0
        for index, bitrate in enumerate(bitrates):
            if bitrate <= estimate:
                sustainable = index
        if level < sustainable:
            return False
        omega = self.omega_buffer_based(player, level)
        return player.buffer.level >= omega

    def omega_buffer_based(self, player: DashPlayer, level: int) -> float:
        """Ω = e_l(level) + one chunk duration (§5.2.2).

        Capped below the largest buffer a player can hold at request time
        (capacity minus one chunk, less half a chunk of margin) so the
        threshold stays attainable for the top level, whose band starts at
        the cushion knee.
        """
        abr = player.abr
        chunk_duration = player.manifest.chunk_duration
        if hasattr(abr, "level_buffer_range"):
            low, _high = abr.level_buffer_range(
                level, player.buffer.capacity, player.manifest.bitrates())
        else:
            # Non-BBA buffer algorithm without a map: be conservative.
            low = 0.5 * player.buffer.capacity
        return min(low + chunk_duration,
                   player.buffer.capacity - 1.5 * chunk_duration)

    def __repr__(self) -> str:
        return (f"<MpDashAdapter mode={self.deadline_mode} "
                f"armed={self.armed_count} skipped={self.skipped_count}>")
