"""The deadline-aware MP-DASH scheduler (Algorithm 1 of the paper).

Given a chunk of size ``S`` and a download window ``D``, the scheduler
drives the preferred (cheapest) path at full capacity and keeps the costlier
paths off; after every scheduling step it re-checks whether the preferred
path alone can still deliver the remaining bytes before the (α-shrunk)
deadline, enabling the next-costlier path when it cannot and disabling it
again when it can:

    enable  iff (α·D − timeSpent) · R_preferred < S − sentBytes
    disable iff (α·D − timeSpent) · R_preferred > S − sentBytes

``α ≤ 1`` trades cellular bytes for deadline safety: smaller α targets an
earlier virtual deadline, compensating for throughput-estimation error.

The N-path generalization (§4, "cost-varying version") sorts interfaces by
cost and finds the smallest prefix whose combined predicted throughput can
meet the deadline, enabling exactly that prefix.  With two paths this
reduces to Algorithm 1 verbatim.

This class plugs into :class:`~repro.mptcp.connection.MptcpConnection` as a
:class:`~repro.mptcp.connection.PathController`; enable/disable decisions
therefore incur the DSS signaling delay, as in the kernel implementation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..mptcp.connection import MptcpConnection, PathController, Transfer
from ..obs.events import DeadlineMissed, SchedulerActivated
from .policy import Preference


class Activation:
    """State of one MP_DASH_ENABLE activation (one chunk download)."""

    __slots__ = ("size", "window", "started_at", "transfer_id", "missed")

    def __init__(self, size: float, window: float, started_at: float,
                 transfer_id: int):
        self.size = size
        self.window = window
        self.started_at = started_at
        self.transfer_id = transfer_id
        self.missed = False

    def deadline(self) -> float:
        return self.started_at + self.window


class DeadlineAwareScheduler(PathController):
    """Online deadline-aware path controller (Algorithm 1, N-path form)."""

    def __init__(self, preference: Preference, alpha: float = 1.0):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {alpha!r}")
        self.preference = preference
        self.alpha = alpha
        self._pending: Optional[tuple] = None  # (size, window)
        self._activation: Optional[Activation] = None
        # The connection this controller steers; bound explicitly by
        # MpDashSocket and lazily by the PathController hooks, so that
        # disarm() can restore path state even between transfers.
        self._connection: Optional[MptcpConnection] = None
        # Statistics across the controller's lifetime.
        self.activations = 0
        self.deadline_misses = 0
        self.enable_events = 0
        self.disable_events = 0

    # ------------------------------------------------------------------
    # Socket-option front-end (used by MpDashSocket)
    # ------------------------------------------------------------------
    def arm(self, size: float, window: float) -> None:
        """MP_DASH_ENABLE: activate for the next ``size`` bytes."""
        if size <= 0:
            raise ValueError(f"size must be positive: {size!r}")
        if window <= 0:
            raise ValueError(f"deadline window must be positive: {window!r}")
        self._pending = (size, window)

    def bind(self, connection: MptcpConnection) -> None:
        """Remember the connection this controller steers."""
        self._connection = connection

    def disarm(self) -> None:
        """MP_DASH_DISABLE: deactivate explicitly.

        Deactivated MP-DASH means vanilla MPTCP (§3.1): every path must
        come back, exactly as in :meth:`on_transfer_complete` — without
        the restore the connection stays wedged on whatever subset the
        last activation happened to request.
        """
        self._pending = None
        self._activation = None
        if self._connection is not None:
            for name in self._connection.path_names():
                self._connection.request_path_state(name, True)

    @property
    def active(self) -> bool:
        return self._activation is not None

    # ------------------------------------------------------------------
    # PathController interface
    # ------------------------------------------------------------------
    def on_transfer_start(self, now: float, transfer: Transfer,
                          connection: MptcpConnection) -> None:
        self._connection = connection
        if self._pending is None:
            return
        size, window = self._pending
        self._pending = None
        self._activation = Activation(size, window, now, transfer.id)
        self.activations += 1
        connection.bus.publish(SchedulerActivated(now, transfer.id, size,
                                                  window))

    def on_transfer_complete(self, now: float, transfer: Transfer,
                             connection: MptcpConnection) -> None:
        activation = self._activation
        if activation is None or activation.transfer_id != transfer.id:
            return
        # Deactivation condition (1): S bytes successfully transferred.
        # Deactivated MP-DASH means vanilla MPTCP: every path available.
        self._activation = None
        for name in connection.path_names():
            connection.request_path_state(name, True)

    def on_tick(self, now: float, transfer: Optional[Transfer],
                connection: MptcpConnection) -> Optional[Dict[str, bool]]:
        self._connection = connection
        activation = self._activation
        if activation is None or transfer is None:
            return None
        if activation.transfer_id != transfer.id:
            return None

        # Deactivation condition (2): the deadline has passed.  From then on
        # every interface is used (the transfer is already late).
        if now >= activation.deadline():
            if not activation.missed:
                activation.missed = True
                self.deadline_misses += 1
                connection.bus.publish(DeadlineMissed(now, transfer.id))
            self._activation = None
            desired = {name: True for name in connection.path_names()}
            self._count_flips(connection, desired)
            return desired

        remaining = activation.size - min(transfer.bytes_done,
                                          activation.size)
        # A decision made now reaches the server one signaling delay (plus
        # up to two scheduling ticks) later; budget for it, otherwise a
        # just-in-time cellular enable lands after the deadline.
        guard = connection.signaling_delay + 2.0 * connection.tick_interval
        time_left = (self.alpha * activation.window
                     - (now - activation.started_at) - guard)
        desired = self._desired_states(connection, remaining, time_left)
        self._count_flips(connection, desired)
        return desired

    def next_decision(self, now: float, transfer: Optional[Transfer],
                      connection: MptcpConnection) -> Optional[float]:
        """Predict when the Algorithm 1 condition next flips (fast kernel).

        Between kernel wakeups every quantity in the enable/disable test
        moves linearly: the time budget shrinks at rate 1 and the
        remaining bytes at the current aggregate delivery rate ``r``.  For
        each cost-ordered prefix with predicted capacity ``C`` the
        condition ``(A - t)·C >= R - r·t`` therefore crosses at

            t = (R - A·C) / (r - C)

        (one formula covers both directions).  The earliest positive
        crossing, the activation deadline, and — while any estimator is
        still cold — a short bootstrap poll are candidate wakeups; the
        kernel re-evaluates :meth:`on_tick` there with fresh state, so an
        inaccurate linear prediction costs one extra wakeup, never a wrong
        decision.
        """
        activation = self._activation
        if (activation is None or transfer is None
                or activation.transfer_id != transfer.id):
            return None
        deadline = activation.deadline()
        if now >= deadline:
            return None
        earliest = deadline
        floor = now + connection.tick_interval
        guard = connection.signaling_delay + 2.0 * connection.tick_interval
        budget = (self.alpha * activation.window
                  - (now - activation.started_at) - guard)
        remaining = activation.size - min(transfer.bytes_done,
                                          activation.size)
        names = self._ordered_names(connection)
        estimates = {}
        cold = False
        rate = 0.0
        for name in names:
            estimate = connection.throughput_estimate(name)
            if estimate is None:
                cold = True
                estimate = 0.0
            estimates[name] = estimate
            if connection.path_state(name):
                rate += estimate
        if cold:
            # Estimators warm within a sample interval; poll until the
            # first real capacity numbers exist.
            earliest = min(earliest, now + 0.1)
        else:
            # The linear crossing below assumes the estimates hold still.
            # After a link-capacity change they do not: the estimator
            # drifts toward the new rate one sample at a time, and the
            # enable condition can flip long before the stale-estimate
            # crossing.  While any delivering path's estimate disagrees
            # with its instantaneous capacity, check whether the *decision*
            # would differ under ground-truth capacities: if so a flip is
            # imminent as samples arrive, so poll at sample cadence (the
            # estimator cannot converge faster, so no decision the tick
            # kernel would have made is missed).  If the decisions agree,
            # the drift is cosmetic — a coarse safety poll suffices, which
            # is what keeps wandering-trace (mobility) workloads from
            # waking at 20 Hz through every download.
            drifting = False
            actuals: Dict[str, float] = {}
            for name in names:
                actual = connection.path_capacity(name)
                actuals[name] = actual
                estimate = estimates[name]
                if (connection.path_state(name) and estimate > 0.0
                        and abs(estimate - actual)
                        > 0.25 * max(actual, estimate)):
                    drifting = True
            if drifting:
                if (self._prefix_decision(names, estimates, remaining,
                                          budget)
                        != self._prefix_decision(names, actuals, remaining,
                                                 budget)):
                    earliest = min(earliest, now + 0.05)
                else:
                    earliest = min(earliest, now + 0.25)
        capacity = 0.0
        for name in names[:-1]:
            capacity += estimates[name]
            denominator = rate - capacity
            if denominator == 0.0:
                continue
            crossing = (remaining - max(budget, 0.0) * capacity) / denominator
            if crossing > 0.0 and math.isfinite(crossing):
                candidate = max(now + crossing, floor)
                if candidate < earliest:
                    earliest = candidate
        return max(earliest, floor)

    # ------------------------------------------------------------------
    # Decision core
    # ------------------------------------------------------------------
    def _prefix_decision(self, names: List[str], rates: Dict[str, float],
                         remaining: float, time_left: float) -> tuple:
        """The enabled-prefix Algorithm 1 would pick under ``rates``.

        Same cost-ordered-prefix rule as :meth:`_desired_states`, but over
        caller-supplied rate numbers — used to compare the decision under
        current estimates against the decision under ground-truth
        capacities without touching connection state.
        """
        desired = []
        capacity_so_far = 0.0
        need_more = True
        budget = max(time_left, 0.0)
        for index, name in enumerate(names):
            desired.append(True if index == 0 else need_more)
            capacity_so_far += rates[name]
            if budget * capacity_so_far >= remaining:
                need_more = False
        return tuple(desired)

    def _desired_states(self, connection: MptcpConnection, remaining: float,
                        time_left: float) -> Dict[str, bool]:
        """Smallest cost-ordered prefix of paths that can meet the deadline.

        The preferred path is always on (MP-DASH drives it at full
        capacity); each costlier path turns on only while the combined
        predicted capacity of all cheaper paths cannot deliver the
        remaining bytes in the time left.
        """
        names = self._ordered_names(connection)
        desired: Dict[str, bool] = {}
        capacity_so_far = 0.0
        need_more = True
        for index, name in enumerate(names):
            if index == 0:
                desired[name] = True
            else:
                desired[name] = need_more
            estimate = connection.throughput_estimate(name)
            if estimate is None:
                # Cold estimator: assume the path contributes nothing, which
                # errs toward enabling costlier paths (conservative, same
                # spirit as alpha < 1).
                estimate = 0.0
            capacity_so_far += estimate
            if max(time_left, 0.0) * capacity_so_far >= remaining:
                need_more = False
        return desired

    def _ordered_names(self, connection: MptcpConnection) -> List[str]:
        known = set(connection.path_names())
        ordered = [n for n in self.preference.order if n in known]
        missing = known - set(ordered)
        if missing:
            raise KeyError(
                f"connection has paths outside the preference: "
                f"{sorted(missing)} (preference {self.preference.order})")
        return ordered

    def _count_flips(self, connection: MptcpConnection,
                     desired: Dict[str, bool]) -> None:
        for name, enabled in desired.items():
            current = connection.path_state(name)
            if enabled and not current:
                self.enable_events += 1
            elif not enabled and current:
                self.disable_events += 1

    def __repr__(self) -> str:
        state = "active" if self.active else "idle"
        return (f"<DeadlineAwareScheduler {state} alpha={self.alpha} "
                f"pref={self.preference.order}>")
