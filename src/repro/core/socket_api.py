"""Socket-option style interface to the MP-DASH scheduler (§3.2).

The kernel prototype exposes MP-DASH to applications through two socket
options:

* ``MP_DASH_ENABLE`` conveys a data size ``S`` and deadline ``D``; MP-DASH
  is then active for the next ``S`` bytes.
* ``MP_DASH_DISABLE`` deactivates it explicitly.

MP-DASH deactivates on its own when (1) ``S`` bytes have transferred or
(2) the deadline has passed — both handled inside
:class:`~repro.core.scheduler.DeadlineAwareScheduler`.

The second half of the interface lets a DASH adapter read network state the
player cannot see (MPTCP is transparent to applications): the per-path and
aggregate throughput estimates.

:class:`MpDashSocket` binds one scheduler instance to one MPTCP connection
and enforces the user's interface preference by making the preferred path
the connection's primary.
"""

from __future__ import annotations

from typing import Optional

from ..mptcp.connection import MptcpConnection
from ..obs.events import DeadlineArmed, DeadlineDisarmed
from .policy import Preference
from .scheduler import DeadlineAwareScheduler


class MpDashSocket:
    """Application-facing handle combining a connection and the scheduler."""

    def __init__(self, connection: MptcpConnection, preference: Preference,
                 alpha: float = 1.0):
        self.connection = connection
        self.preference = preference
        self.scheduler = DeadlineAwareScheduler(preference, alpha=alpha)
        self._install()

    def _install(self) -> None:
        if self.connection.controller is not None:
            raise RuntimeError(
                "connection already has a path controller installed")
        # Preference enforcement: the preferred interface becomes MPTCP's
        # primary (it carries signaling and is never disabled by MP-DASH).
        primary_name = self.preference.primary
        self.connection.primary = self.connection.subflow(primary_name)
        self.preference.apply_costs(
            [sf.path for sf in self.connection.subflows])
        self.scheduler.bind(self.connection)
        self.connection.controller = self.scheduler

    # ------------------------------------------------------------------
    # The two socket options
    # ------------------------------------------------------------------
    def mp_dash_enable(self, size: float, deadline: float) -> None:
        """Activate MP-DASH for the next ``size`` bytes with window
        ``deadline`` seconds (measured from when the download starts).

        The initial path configuration — preferred interface on, every
        costlier interface off — is signalled immediately: in the kernel the
        decision bit travels with the request itself, so the server starts
        the response with the cellular subflow already skipped (Algorithm 1
        "turns off the cellular subflow at the beginning").
        """
        self.scheduler.arm(size, deadline)
        self.connection.bus.publish(DeadlineArmed(self.connection.sim.now,
                                                  size, deadline))
        for name in self.connection.path_names():
            self.connection.request_path_state(
                name, name == self.preference.primary)

    def mp_dash_disable(self) -> None:
        """Explicitly deactivate MP-DASH; MPTCP reverts to vanilla behaviour
        with every interface available (the scheduler's ``disarm`` restores
        every path on the bound connection)."""
        self.connection.bus.publish(
            DeadlineDisarmed(self.connection.sim.now))
        self.scheduler.disarm()

    @property
    def active(self) -> bool:
        return self.scheduler.active

    # ------------------------------------------------------------------
    # Cross-layer reads for the DASH adapter
    # ------------------------------------------------------------------
    def aggregate_throughput(self) -> Optional[float]:
        """Estimated combined throughput of all paths (bytes/second)."""
        return self.connection.aggregate_throughput_estimate()

    def path_throughput(self, name: str) -> Optional[float]:
        """Estimated throughput of one path (bytes/second)."""
        return self.connection.throughput_estimate(name)

    def __repr__(self) -> str:
        return (f"<MpDashSocket pref={self.preference.order} "
                f"active={self.active}>")
