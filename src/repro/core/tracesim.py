"""Slot-granularity trace-driven simulation of Algorithm 1 (§7.2.2).

The paper evaluates the online scheduler against the offline optimum by
replaying bandwidth profiles through a discrete-time simulator: each slot
lasts one round-trip time, enabled interfaces deliver ``b(i, j)·d`` bytes,
the WiFi estimate comes from the Holt-Winters predictor, and Algorithm 1
decides per slot whether the cellular interface runs.  Once the deadline
passes, both interfaces are always used.

This module is that simulator.  It is deliberately separate from the full
event-driven transport (``repro.mptcp``): Table 2 isolates the *scheduling*
quality from TCP dynamics, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from ..estimators import HoltWinters, ThroughputEstimator


@dataclass
class TraceSimResult:
    """Outcome of one trace-driven scheduling run."""

    #: Bytes delivered per interface name.
    bytes_per_path: Dict[str, float]
    #: Seconds from start until the last needed byte.
    finish_time: float
    #: Whether the transfer missed its deadline.
    missed: bool
    #: By how much (seconds); zero when met.
    miss_by: float
    total_bytes: float = 0.0

    def __post_init__(self) -> None:
        self.total_bytes = sum(self.bytes_per_path.values())

    def fraction_on(self, path: str) -> float:
        if self.total_bytes <= 0:
            return 0.0
        return self.bytes_per_path.get(path, 0.0) / self.total_bytes


def simulate_online(preferred: Sequence[float], costly: Sequence[float],
                    slot: float, size: float, deadline: float,
                    alpha: float = 1.0,
                    estimator_factory: Optional[
                        Callable[[], ThroughputEstimator]] = None,
                    preferred_name: str = "wifi",
                    costly_name: str = "cellular") -> TraceSimResult:
    """Run Algorithm 1 over recorded per-slot bandwidths.

    ``preferred`` and ``costly`` are per-slot bandwidths (bytes/second) of
    the preferred (WiFi) and costly (cellular) interfaces.  The preferred
    interface runs at full capacity throughout; the costly one starts
    disabled and is toggled by the deadline test each slot.  Slots past the
    recorded horizon wrap around, as in trace replay.
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1]: {alpha!r}")
    if slot <= 0 or size <= 0 or deadline <= 0:
        raise ValueError("slot, size, and deadline must be positive")
    if not preferred or not costly:
        raise ValueError("bandwidth series cannot be empty")
    factory = estimator_factory if estimator_factory else HoltWinters
    estimator = factory()

    sent = 0.0
    sent_preferred = 0.0
    sent_costly = 0.0
    costly_enabled = False
    missed = False
    time = 0.0
    finish = 0.0
    j = 0
    while sent < size:
        bw_preferred = preferred[j % len(preferred)]
        bw_costly = costly[j % len(costly)]

        remaining_before = size - sent
        combined_rate = bw_preferred + (bw_costly if costly_enabled else 0.0)
        take_preferred = min(bw_preferred * slot, remaining_before)
        sent += take_preferred
        sent_preferred += take_preferred
        remaining = size - sent
        if costly_enabled and remaining > 0:
            take_costly = min(bw_costly * slot, remaining)
            sent += take_costly
            sent_costly += take_costly

        estimator.update(bw_preferred)
        time += slot
        j += 1
        if sent >= size:
            # Resolve completion within the final slot: both paths deliver
            # concurrently at their combined rate.
            if combined_rate > 0:
                finish = time - slot + remaining_before / combined_rate
            else:
                finish = time
            break

        if time >= deadline:
            # Deadline passed: MP-DASH deactivates, all interfaces run.
            missed = True
            costly_enabled = True
            continue

        estimate = estimator.predict_or(bw_preferred)
        time_left = alpha * deadline - time
        can_make_it = max(time_left, 0.0) * estimate >= (size - sent)
        costly_enabled = not can_make_it

    miss_by = max(0.0, finish - deadline)
    return TraceSimResult(
        bytes_per_path={preferred_name: sent_preferred,
                        costly_name: sent_costly},
        finish_time=finish, missed=missed or finish > deadline,
        miss_by=miss_by)


def simulate_oracle(preferred: Sequence[float], costly: Sequence[float],
                    slot: float, size: float, deadline: float,
                    preferred_name: str = "wifi",
                    costly_name: str = "cellular") -> TraceSimResult:
    """Algorithm 1 with perfect knowledge of future preferred-path bandwidth.

    §4 proves this yields the minimum cellular usage for N=2: with the true
    future capacity of the preferred path known, cellular is enabled exactly
    in the slots where the remaining WiFi capacity until the deadline cannot
    cover the remaining bytes.
    """
    if slot <= 0 or size <= 0 or deadline <= 0:
        raise ValueError("slot, size, and deadline must be positive")
    num_slots = max(1, int(round(deadline / slot)))

    def bw_at(series: Sequence[float], j: int) -> float:
        return series[j % len(series)]

    # Suffix sums of preferred-path capacity within the deadline window.
    future_preferred = [0.0] * (num_slots + 1)
    for j in range(num_slots - 1, -1, -1):
        future_preferred[j] = (future_preferred[j + 1]
                               + bw_at(preferred, j) * slot)

    sent = 0.0
    sent_preferred = 0.0
    sent_costly = 0.0
    time = 0.0
    finish = 0.0
    j = 0
    while sent < size:
        remaining_before = size - sent
        use_costly = False
        if j + 1 <= num_slots:
            wifi_this_slot = bw_at(preferred, j) * slot
            # Enable cellular this slot iff the preferred path alone cannot
            # finish within the remaining window (this slot included).
            if (wifi_this_slot + future_preferred[min(j + 1, num_slots)]
                    < remaining_before):
                use_costly = True
        else:
            # Past the deadline (infeasible instance): use everything.
            use_costly = True

        combined_rate = bw_at(preferred, j) + (
            bw_at(costly, j) if use_costly else 0.0)
        take_preferred = min(bw_at(preferred, j) * slot, remaining_before)
        sent += take_preferred
        sent_preferred += take_preferred
        remaining = size - sent
        if use_costly and remaining > 0:
            take_costly = min(bw_at(costly, j) * slot, remaining)
            sent += take_costly
            sent_costly += take_costly
        time += slot
        j += 1
        if sent >= size:
            if combined_rate > 0:
                finish = time - slot + remaining_before / combined_rate
            else:
                finish = time
            break

    miss_by = max(0.0, finish - deadline)
    return TraceSimResult(
        bytes_per_path={preferred_name: sent_preferred,
                        costly_name: sent_costly},
        finish_time=finish, missed=finish > deadline, miss_by=miss_by)
