"""Chunk deadline computation (§5.1).

A chunk's deadline is *not* set to the instant the playback would stall —
missing that by even a little would hurt QoE.  Instead the deadline keeps
the buffer occupancy from decreasing, under one of two schemes:

* **duration-based** — ``D`` is the chunk's playout duration.  Downloading a
  4-second chunk within 4 seconds returns exactly the buffer it consumes,
  holding the buffer level steady chunk by chunk (short-term stability).
* **rate-based** — ``D`` is the chunk size divided by the quality level's
  nominal (average) encoding bitrate.  A 1 MB chunk at a 4 Mbps level gets
  ``1·8/4 = 2`` seconds.  Over a whole video this also holds the buffer
  steady, but per chunk it budgets less time to larger-than-average chunks —
  which is why rate-based saves more cellular data on high-bitrate chunks
  (Figure 8).

On top of either scheme, **deadline extension** relaxes the deadline when
the buffer is nearly full (above threshold Φ): a stall is then improbable,
so every second of buffer above Φ is added to the window, giving Algorithm 1
more room to avoid cellular.
"""

from __future__ import annotations

DURATION_BASED = "duration"
RATE_BASED = "rate"

DEADLINE_MODES = (DURATION_BASED, RATE_BASED)


def duration_based_deadline(chunk_duration: float) -> float:
    """Deadline equal to the chunk's playout duration."""
    if chunk_duration <= 0:
        raise ValueError(f"chunk duration must be positive: {chunk_duration!r}")
    return chunk_duration


def rate_based_deadline(chunk_bytes: float,
                        nominal_bitrate_bytes_per_s: float) -> float:
    """Deadline equal to chunk size over the level's average bitrate."""
    if chunk_bytes <= 0:
        raise ValueError(f"chunk size must be positive: {chunk_bytes!r}")
    if nominal_bitrate_bytes_per_s <= 0:
        raise ValueError(
            f"bitrate must be positive: {nominal_bitrate_bytes_per_s!r}")
    return chunk_bytes / nominal_bitrate_bytes_per_s


def compute_deadline(mode: str, chunk_bytes: float, chunk_duration: float,
                     nominal_bitrate_bytes_per_s: float) -> float:
    """Dispatch on the deadline mode."""
    if mode == DURATION_BASED:
        return duration_based_deadline(chunk_duration)
    if mode == RATE_BASED:
        return rate_based_deadline(chunk_bytes, nominal_bitrate_bytes_per_s)
    raise ValueError(f"unknown deadline mode {mode!r} "
                     f"(known: {DEADLINE_MODES})")


def extend_deadline(deadline: float, buffer_level: float,
                    phi: float) -> float:
    """Apply deadline extension: add ``buffer_level - phi`` when above Φ."""
    if deadline <= 0:
        raise ValueError(f"deadline must be positive: {deadline!r}")
    if phi < 0:
        raise ValueError(f"phi cannot be negative: {phi!r}")
    if buffer_level > phi:
        return deadline + (buffer_level - phi)
    return deadline
