"""Offline optimal scheduling: the 0-1 min-knapsack formulation of §4.

With the bandwidth of every interface known for every future time slot, the
scheduling problem is: choose a set of (interface, slot) items — item
(i, j) has weight ``b(i, j)·d`` bytes and value (cost) ``c(i, j)·b(i, j)·d``
— such that the total weight covers the chunk size ``S`` and the total value
is minimized.  The paper solves this with dynamic programming in
O(N·D·S); Table 2's "Cell % Optimal" column is exactly this solver run on
the recorded bandwidth profiles.

Two additional solvers support testing and ablation:

* :func:`solve_greedy` — the sort-by-cost heuristic sketched in §4 for the
  N-path generalization,
* :func:`fluid_lower_bound` — the continuous relaxation (slots may be used
  fractionally), a strict lower bound the DP must approach within one slot's
  worth of bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class OfflineSolution:
    """Result of an offline schedule computation."""

    #: Total cost of the selected items.
    cost: float
    #: Selected (interface, slot) items.
    selected: List[Tuple[str, int]]
    #: Bytes scheduled per interface.
    bytes_per_path: Dict[str, float] = field(default_factory=dict)
    #: Sum of selected item weights (>= requested size when feasible).
    total_bytes: float = 0.0
    #: Whether the instance was feasible (total capacity covers the size).
    feasible: bool = True

    def fraction_on(self, path: str, size: float) -> float:
        """Fraction of ``size`` carried by ``path`` (overshoot discounted).

        The binary formulation may overshoot ``size`` by part of one slot;
        a real transfer stops at ``size`` bytes, and a cost-minimizing
        execution trims the overshoot from the costliest interface it
        scheduled — so the overshoot is deducted from that one.
        """
        if size <= 0:
            raise ValueError(f"size must be positive: {size!r}")
        scheduled = self.bytes_per_path.get(path, 0.0)
        overshoot = max(0.0, self.total_bytes - size)
        if overshoot > 0 and self.bytes_per_path:
            costliest = max(self.bytes_per_path,
                            key=lambda p: self.bytes_per_path[p])
            if path == costliest:
                scheduled = max(0.0, scheduled - overshoot)
        return min(1.0, scheduled / size)


def _validate(bandwidths: Dict[str, Sequence[float]],
              costs: Dict, slot: float, size: float) -> int:
    if not bandwidths:
        raise ValueError("need at least one interface")
    lengths = {len(series) for series in bandwidths.values()}
    if len(lengths) != 1:
        raise ValueError(f"all interfaces need equal slot counts: {lengths}")
    (num_slots,) = lengths
    if num_slots == 0:
        raise ValueError("need at least one time slot")
    missing = set(bandwidths) - set(costs)
    if missing:
        raise ValueError(f"costs missing for interfaces: {sorted(missing)}")
    for name, cost in costs.items():
        if not isinstance(cost, (int, float)):
            if len(cost) != num_slots:
                raise ValueError(
                    f"per-slot costs for {name!r} have {len(cost)} entries, "
                    f"expected {num_slots}")
    if slot <= 0:
        raise ValueError(f"slot duration must be positive: {slot!r}")
    if size <= 0:
        raise ValueError(f"size must be positive: {size!r}")
    return num_slots


def _cost_at(costs: Dict, name: str, j: int) -> float:
    """The §4 formulation's c(i, j): costs may be static per interface
    (a number) or time-varying (a per-slot sequence)."""
    cost = costs[name]
    if isinstance(cost, (int, float)):
        return float(cost)
    return float(cost[j])


def _build_items(bandwidths: Dict[str, Sequence[float]],
                 costs: Dict,
                 slot: float) -> List[Tuple[str, int, float, float]]:
    """Flatten (interface, slot) grid into (name, j, weight, value) items."""
    items = []
    for name in sorted(bandwidths):
        for j, bw in enumerate(bandwidths[name]):
            weight = bw * slot
            if weight > 0:
                items.append((name, j, weight,
                              _cost_at(costs, name, j) * weight))
    return items


def _everything(items: List[Tuple[str, int, float, float]],
                feasible: bool) -> OfflineSolution:
    solution = OfflineSolution(cost=sum(v for _, _, _, v in items),
                               selected=[(n, j) for n, j, _, _ in items],
                               feasible=feasible)
    for name, _, weight, _ in items:
        solution.bytes_per_path[name] = (
            solution.bytes_per_path.get(name, 0.0) + weight)
        solution.total_bytes += weight
    return solution


def solve_offline(bandwidths: Dict[str, Sequence[float]],
                  costs: Dict, slot: float, size: float,
                  resolution: float = None) -> OfflineSolution:
    """Optimal (up to weight discretization) min-cost coverage schedule.

    ``bandwidths`` maps interface name to per-slot bandwidth (bytes/second);
    ``costs`` maps interface name to a unit-data cost — a number, or a
    per-slot sequence for the formulation's time-varying c(i, j) (e.g.
    cellular priced higher at peak hours); ``slot`` is the slot
    duration in seconds and ``size`` the bytes to cover.  ``resolution`` is
    the DP's byte quantum; item weights round *down* to it, so a returned
    schedule always truly covers ``size``.
    """
    _validate(bandwidths, costs, slot, size)
    if resolution is None:
        resolution = max(size / 4000.0, 1.0)
    if resolution <= 0:
        raise ValueError(f"resolution must be positive: {resolution!r}")

    items = _build_items(bandwidths, costs, slot)
    capacity = sum(w for _, _, w, _ in items)
    if capacity < size:
        return _everything(items, feasible=False)

    target = int(np.ceil(size / resolution))
    infinity = float("inf")

    # dp[u] = min cost of a subset covering at least u quanta, computed per
    # item prefix; the stack of prefix arrays drives the backtrace.
    dp = np.full(target + 1, infinity)
    dp[0] = 0.0
    prefix_dp = [dp]
    unit_weights = []
    for name, j, weight, value in items:
        units = int(weight / resolution)
        unit_weights.append(units)
        if units <= 0:
            prefix_dp.append(dp)
            continue
        shifted = np.full(target + 1, infinity)
        if units >= target:
            shifted[target] = float(dp.min()) + value
        else:
            shifted[units:target] = dp[:target - units] + value
            shifted[target] = float(dp[target - units:].min()) + value
        dp = np.minimum(dp, shifted)
        prefix_dp.append(dp)

    # Backtrace: walk items last-to-first; an item was taken at coverage u
    # iff skipping it cannot explain the cost at u.
    selected: List[Tuple[str, int]] = []
    u = target
    for idx in range(len(items) - 1, -1, -1):
        if u == 0:
            break
        name, j, weight, value = items[idx]
        units = unit_weights[idx]
        if units <= 0:
            continue
        before, after = prefix_dp[idx], prefix_dp[idx + 1]
        current = after[u]
        if np.isfinite(before[u]) and before[u] <= current + 1e-9:
            continue  # skipping the item explains this state
        # The item was taken; find the source coverage level.
        if u < target:
            source = u - units
        else:
            sources = np.arange(max(0, target - units), target + 1)
            costs_from = before[sources] + value
            source = int(sources[int(np.argmin(costs_from))])
        selected.append((name, j))
        u = max(0, source)

    solution = OfflineSolution(cost=float(prefix_dp[-1][target]),
                               selected=list(reversed(selected)))
    weight_of = {(n, j): w for n, j, w, _ in items}
    for name, j in solution.selected:
        weight = weight_of[(name, j)]
        solution.bytes_per_path[name] = (
            solution.bytes_per_path.get(name, 0.0) + weight)
        solution.total_bytes += weight
    return solution


def solve_greedy(bandwidths: Dict[str, Sequence[float]],
                 costs: Dict, slot: float,
                 size: float) -> OfflineSolution:
    """Cost-sorted greedy: fill from cheap items, topping up with the
    smallest slots of costlier ones.

    This mirrors the paper's N-path approximation: feed data from low-cost
    to high-cost interfaces.  Within one unit-cost tier, slots are added
    smallest first, which minimizes overshoot (not always optimal — the
    DP is).  Costs may be static per interface or per-slot sequences.
    """
    _validate(bandwidths, costs, slot, size)
    items = _build_items(bandwidths, costs, slot)
    by_tier: Dict[float, List[Tuple[float, str, int]]] = {}
    for name, j, weight, value in items:
        by_tier.setdefault(value / weight, []).append((weight, name, j))
    selected: List[Tuple[str, int]] = []
    covered = 0.0
    total_cost = 0.0
    bytes_per_path: Dict[str, float] = {}
    for tier in sorted(by_tier):
        if covered >= size:
            break
        tier_items = sorted(by_tier[tier])
        deficit = size - covered
        tier_capacity = sum(w for w, _, _ in tier_items)
        if tier_capacity <= deficit:
            chosen = tier_items
        else:
            chosen = []
            acc = 0.0
            for item in tier_items:
                if acc >= deficit:
                    break
                chosen.append(item)
                acc += item[0]
            # A single slot just big enough may beat the last small one.
            if chosen:
                need = deficit - (acc - chosen[-1][0])
                chosen_keys = {(n, j) for _, n, j in chosen}
                replacements = [it for it in tier_items
                                if (it[1], it[2]) not in chosen_keys
                                and it[0] >= need]
                if replacements and replacements[0][0] < chosen[-1][0]:
                    chosen[-1] = replacements[0]
        for weight, name, j in chosen:
            selected.append((name, j))
            covered += weight
            total_cost += tier * weight
            bytes_per_path[name] = bytes_per_path.get(name, 0.0) + weight
    return OfflineSolution(cost=total_cost, selected=selected,
                           bytes_per_path=bytes_per_path, total_bytes=covered,
                           feasible=covered >= size)


def fluid_lower_bound(bandwidths: Dict[str, Sequence[float]],
                      costs: Dict, slot: float,
                      size: float) -> float:
    """Cost of the continuous relaxation (fractional slot use).

    Fill capacity in ascending unit-cost order, using the final slot
    fractionally.  Any binary (0-1) solution costs at least this much.
    """
    _validate(bandwidths, costs, slot, size)
    items = sorted((value / weight, weight)
                   for _, _, weight, value
                   in _build_items(bandwidths, costs, slot))
    covered = 0.0
    cost = 0.0
    for unit_cost, weight in items:
        if covered >= size:
            break
        take = min(weight, size - covered)
        covered += take
        cost += unit_cost * take
    return cost
