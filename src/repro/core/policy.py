"""User-specified multipath preference policies.

The preference is quantified by a unit-data cost per path (§4): "the cost
could be data usage, energy consumption, or a combination of both".  Only
the *ordering* matters to the online scheduler — data is fed from low-cost
to high-cost interfaces — so a policy is an ordered ranking of interface
names, with optional explicit costs for the generalized N-path variant.

The two policies the paper's prototype ships — prefer WiFi over cellular and
its symmetric opposite — are provided as constants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..net.link import CELLULAR, WIFI, Path


class Preference:
    """An ordered interface preference (cheapest first)."""

    def __init__(self, order: Sequence[str],
                 costs: Optional[Dict[str, float]] = None):
        if not order:
            raise ValueError("preference order cannot be empty")
        if len(set(order)) != len(order):
            raise ValueError(f"duplicate interfaces in preference: {order}")
        self.order: List[str] = list(order)
        if costs is None:
            # Default: rank index as cost, so ordering is preserved.
            costs = {name: float(i) for i, name in enumerate(order)}
        missing = set(order) - set(costs)
        if missing:
            raise ValueError(f"costs missing for interfaces: {sorted(missing)}")
        sorted_by_cost = sorted(order, key=lambda n: (costs[n], order.index(n)))
        if sorted_by_cost != self.order:
            raise ValueError("costs must be non-decreasing in preference order")
        self.costs = dict(costs)

    @property
    def primary(self) -> str:
        """The preferred interface — set as MPTCP's primary interface."""
        return self.order[0]

    def secondary_names(self) -> List[str]:
        """Everything except the primary (the on/off-managed paths)."""
        return self.order[1:]

    def cost_of(self, name: str) -> float:
        try:
            return self.costs[name]
        except KeyError:
            raise KeyError(f"interface {name!r} not in preference "
                           f"{self.order}") from None

    def rank(self, name: str) -> int:
        try:
            return self.order.index(name)
        except ValueError:
            raise KeyError(f"interface {name!r} not in preference "
                           f"{self.order}") from None

    def apply_costs(self, paths: Sequence[Path]) -> None:
        """Stamp this policy's costs onto path objects."""
        for path in paths:
            path.cost = self.cost_of(path.name)

    def sorted_paths(self, paths: Sequence[Path]) -> List[Path]:
        """Paths ordered cheapest-first according to this preference."""
        return sorted(paths, key=lambda p: self.rank(p.name))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Preference):
            return NotImplemented
        return self.order == other.order and self.costs == other.costs

    def __repr__(self) -> str:
        return f"<Preference {' < '.join(self.order)}>"


def prefer_wifi() -> Preference:
    """WiFi preferred over cellular (the common case: metered LTE)."""
    return Preference([WIFI, CELLULAR], {WIFI: 0.0, CELLULAR: 1.0})


def prefer_cellular() -> Preference:
    """Cellular preferred over WiFi (e.g. while moving between APs)."""
    return Preference([CELLULAR, WIFI], {CELLULAR: 0.0, WIFI: 1.0})
