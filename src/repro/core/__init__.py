"""MP-DASH core: deadline-aware scheduler, offline optimum, video adapter."""

from .adapter import MpDashAdapter
from .deadlines import (DEADLINE_MODES, DURATION_BASED, RATE_BASED,
                        compute_deadline, duration_based_deadline,
                        extend_deadline, rate_based_deadline)
from .offline import (OfflineSolution, fluid_lower_bound, solve_greedy,
                      solve_offline)
from .policy import Preference, prefer_cellular, prefer_wifi
from .scheduler import DeadlineAwareScheduler
from .socket_api import MpDashSocket
from .tracesim import TraceSimResult, simulate_online, simulate_oracle

__all__ = [
    "DEADLINE_MODES", "DURATION_BASED", "DeadlineAwareScheduler",
    "MpDashAdapter", "MpDashSocket", "OfflineSolution", "Preference",
    "RATE_BASED", "TraceSimResult", "compute_deadline",
    "duration_based_deadline", "extend_deadline", "fluid_lower_bound",
    "prefer_cellular", "prefer_wifi", "rate_based_deadline", "simulate_online",
    "simulate_oracle", "solve_greedy", "solve_offline",
]
