"""Radio power profiles for the devices the paper models.

The paper computes radio energy by replaying network traces through the
multipath radio power model of Nika et al. [30], which itself builds on the
LTE measurements of Huang et al. (MobiSys 2012) [21]: a radio is
characterized by an active power that scales with throughput, a fixed
high-power *tail* after the last packet (LTE's RRC release timer), and a
low idle power (DRX cycles for LTE, PSM beacons for WiFi).

Numbers below follow the published LTE/WiFi measurements for the Samsung
Galaxy Note family; the Galaxy S III profile differs slightly (the paper
reports both devices "yielding similar results" and publishes the Note's).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InterfacePowerProfile:
    """Power parameters of one radio interface (all powers in watts)."""

    name: str
    #: Baseline power while actively transferring.
    active_base: float
    #: Additional power per Mbps of downlink throughput.
    downlink_per_mbps: float
    #: High-power tail duration after the last packet (seconds).
    tail_time: float
    #: Power during the tail.
    tail_power: float
    #: Average power while idle-but-attached (DRX / PSM).
    idle_power: float
    #: One-time promotion cost entering the active state (joules).
    promotion_energy: float = 0.0

    def active_power(self, throughput_mbps: float) -> float:
        """Power while transferring at ``throughput_mbps`` downlink."""
        if throughput_mbps < 0:
            raise ValueError(
                f"throughput cannot be negative: {throughput_mbps!r}")
        return self.active_base + self.downlink_per_mbps * throughput_mbps


@dataclass(frozen=True)
class DevicePowerProfile:
    """A device: one LTE profile plus one WiFi profile."""

    name: str
    lte: InterfacePowerProfile
    wifi: InterfacePowerProfile

    def for_interface(self, interface: str) -> InterfacePowerProfile:
        if interface == "cellular":
            return self.lte
        if interface == "wifi":
            return self.wifi
        raise KeyError(f"unknown interface {interface!r} "
                       f"(known: cellular, wifi)")


#: Samsung Galaxy Note — LTE numbers from Huang et al. MobiSys 2012:
#: transfer power 1288 mW base + 52 mW/Mbps down, an 11.6 s RRC release
#: tail whose *average* power reflects connected-mode DRX sleeping between
#: cycles (the paper's model [30] explicitly accounts for DRX), and
#: RRC_IDLE DRX averaging ~31 mW.  WiFi active power on 802.11n hardware is
#: dominated by keeping the radio awake (~450 mW RX) and grows only mildly
#: with throughput; during a streaming session the WiFi radio never deep-
#: sleeps (PSM with traffic every beacon interval), so idle power stays
#: around 100 mW.
GALAXY_NOTE = DevicePowerProfile(
    name="galaxy_note",
    lte=InterfacePowerProfile(
        name="lte", active_base=1.288, downlink_per_mbps=0.052,
        tail_time=11.576, tail_power=0.500, idle_power=0.031,
        promotion_energy=0.315),  # 260 ms at 1210 mW
    wifi=InterfacePowerProfile(
        name="wifi", active_base=0.450, downlink_per_mbps=0.012,
        tail_time=0.238, tail_power=0.200, idle_power=0.100,
        promotion_energy=0.010),
)

#: Samsung Galaxy S III — same structure, slightly lower LTE powers and a
#: shorter tail (per-device RRC timer configuration).
GALAXY_S3 = DevicePowerProfile(
    name="galaxy_s3",
    lte=InterfacePowerProfile(
        name="lte", active_base=1.169, downlink_per_mbps=0.048,
        tail_time=10.2, tail_power=0.470, idle_power=0.029,
        promotion_energy=0.290),
    wifi=InterfacePowerProfile(
        name="wifi", active_base=0.420, downlink_per_mbps=0.011,
        tail_time=0.250, tail_power=0.190, idle_power=0.095,
        promotion_energy=0.010),
)

DEVICES = {profile.name: profile for profile in (GALAXY_NOTE, GALAXY_S3)}
