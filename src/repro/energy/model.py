"""Trace-replay radio energy computation.

Given the binned byte activity of one interface (from the transport's
:class:`~repro.mptcp.activity.ActivityLog`), the model walks the timeline
and charges:

* **active** energy for every bin that carried data, at the profile's
  throughput-dependent power,
* **tail** energy after each burst — the radio lingers in its high-power
  state for ``tail_time`` (or until the next burst, whichever comes first;
  bursts inside the tail keep the radio promoted, so no promotion cost is
  charged for them),
* **promotion** energy each time the radio enters the active state from
  idle,
* **idle** energy for everything else until the session ends.

This is exactly why MP-DASH's burst-then-idle traffic beats throttling
(Table 4): a 700 kbps trickle keeps the LTE radio pinned in its ~1.3 W
active state for the whole session, while MP-DASH pays for short bursts
plus tails and idles at ~31 mW in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..mptcp.activity import ActivityLog
from ..obs.events import (RADIO_ACTIVE, RADIO_IDLE, RADIO_TAIL,
                          RadioStateChange)
from .devices import DevicePowerProfile, InterfacePowerProfile


@dataclass
class EnergyBreakdown:
    """Joules spent per radio state."""

    active: float = 0.0
    tail: float = 0.0
    idle: float = 0.0
    promotion: float = 0.0

    @property
    def total(self) -> float:
        return self.active + self.tail + self.idle + self.promotion

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(self.active + other.active,
                               self.tail + other.tail,
                               self.idle + other.idle,
                               self.promotion + other.promotion)


def interface_energy(activity: ActivityLog, path: str,
                     profile: InterfacePowerProfile,
                     session_end: float) -> EnergyBreakdown:
    """Energy of one interface over [0, session_end]."""
    if session_end <= 0:
        raise ValueError(f"session_end must be positive: {session_end!r}")
    times, values = activity.series(path, until=session_end)
    width = activity.bin_width
    breakdown = EnergyBreakdown()

    #: End of the current high-power window (active burst + its tail).
    promoted_until = 0.0
    last_burst_end = None
    for start, num_bytes in zip(times, values):
        if num_bytes <= 0:
            continue
        end = start + width
        if last_burst_end is None or start > promoted_until:
            # Entering active from idle: promotion, and close the previous
            # tail (charged fully below when we know the gap).
            breakdown.promotion += profile.promotion_energy
        if last_burst_end is not None:
            gap = max(0.0, start - last_burst_end)
            tail = min(gap, profile.tail_time)
            breakdown.tail += tail * profile.tail_power
            breakdown.idle += max(0.0, gap - tail) * profile.idle_power
        else:
            breakdown.idle += max(0.0, start) * profile.idle_power
        throughput_mbps = num_bytes * 8.0 / 1e6 / width
        breakdown.active += profile.active_power(throughput_mbps) * width
        last_burst_end = end
        promoted_until = end + profile.tail_time

    if last_burst_end is None:
        breakdown.idle += session_end * profile.idle_power
    else:
        gap = max(0.0, session_end - last_burst_end)
        tail = min(gap, profile.tail_time)
        breakdown.tail += tail * profile.tail_power
        breakdown.idle += max(0.0, gap - tail) * profile.idle_power
    return breakdown


def radio_state_events(activity: ActivityLog, path: str,
                       profile: InterfacePowerProfile,
                       session_end: float) -> List[RadioStateChange]:
    """The radio's idle/active/tail transitions as typed bus events.

    Walks the same binned timeline :func:`interface_energy` charges:
    ``active → tail`` at each burst end, ``tail → idle`` when the tail
    expires before the next burst, and back to ``active`` at the next
    burst.  Every ``active`` transition that follows an ``idle`` one
    (including the first) is a promotion :func:`interface_energy` charged.
    """
    if session_end <= 0:
        raise ValueError(f"session_end must be positive: {session_end!r}")
    times, values = activity.series(path, until=session_end)
    width = activity.bin_width
    events: List[RadioStateChange] = []
    last_burst_end = None
    for start, num_bytes in zip(times, values):
        if num_bytes <= 0:
            continue
        if last_burst_end is None:
            events.append(RadioStateChange(start, path, RADIO_ACTIVE))
        elif start > last_burst_end:
            events.append(RadioStateChange(last_burst_end, path,
                                           RADIO_TAIL))
            tail_end = last_burst_end + profile.tail_time
            if start > tail_end:
                events.append(RadioStateChange(tail_end, path, RADIO_IDLE))
            events.append(RadioStateChange(start, path, RADIO_ACTIVE))
        last_burst_end = start + width
    if last_burst_end is not None:
        events.append(RadioStateChange(last_burst_end, path, RADIO_TAIL))
        tail_end = last_burst_end + profile.tail_time
        if session_end > tail_end:
            events.append(RadioStateChange(tail_end, path, RADIO_IDLE))
    return events


def session_radio_events(activity: ActivityLog, device: DevicePowerProfile,
                         session_end: float) -> List[RadioStateChange]:
    """Radio transitions for every interface, merged in time order."""
    merged: List[RadioStateChange] = []
    for path in activity.paths():
        merged.extend(radio_state_events(activity, path,
                                         device.for_interface(path),
                                         session_end))
    merged.sort(key=lambda e: (e.time, e.path))
    return merged


def session_energy(activity: ActivityLog, device: DevicePowerProfile,
                   session_end: float) -> Dict[str, EnergyBreakdown]:
    """Per-interface energy for a whole session; keys are path names plus
    ``"total"``."""
    result: Dict[str, EnergyBreakdown] = {}
    total = EnergyBreakdown()
    for path in activity.paths():
        breakdown = interface_energy(activity, path,
                                     device.for_interface(path), session_end)
        result[path] = breakdown
        total = total + breakdown
    result["total"] = total
    return result
