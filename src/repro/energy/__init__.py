"""Radio energy model: device power profiles and trace-replay computation."""

from .devices import (DEVICES, GALAXY_NOTE, GALAXY_S3, DevicePowerProfile,
                      InterfacePowerProfile)
from .model import (EnergyBreakdown, interface_energy, radio_state_events,
                    session_energy, session_radio_events)

__all__ = [
    "DEVICES", "DevicePowerProfile", "EnergyBreakdown", "GALAXY_NOTE",
    "GALAXY_S3", "InterfacePowerProfile", "interface_energy",
    "radio_state_events", "session_energy", "session_radio_events",
]
