"""Radio energy model: device power profiles and trace-replay computation."""

from .devices import (DEVICES, GALAXY_NOTE, GALAXY_S3, DevicePowerProfile,
                      InterfacePowerProfile)
from .model import EnergyBreakdown, interface_energy, session_energy

__all__ = [
    "DEVICES", "DevicePowerProfile", "EnergyBreakdown", "GALAXY_NOTE",
    "GALAXY_S3", "InterfacePowerProfile", "interface_energy",
    "session_energy",
]
