"""MPTCP packet schedulers: default (minRTT) and round-robin.

In the kernel, the scheduler picks which subflow carries the *next packet*
whenever multiple subflows have congestion-window space.  In our fluid model
each tick offers every enabled subflow a byte budget (``rate * dt``); when
the remaining data exceeds the combined budget, every subflow is saturated
and the two schedulers behave identically — which matches the paper's
observation that a backlogged MPTCP flow fills both pipes (Figure 1).  They
differ on the *final sliver* of a transfer and on small transfers:

* ``minrtt`` drains the lowest-RTT subflow first (the kernel default —
  "prefers low latency paths"),
* ``roundrobin`` splits the sliver across subflows in proportion to their
  budgets (the limit of per-packet alternation).

MP-DASH layers on top of either: "disabling" a subflow simply removes it
from the allocation, exactly as the kernel patch skips it in the scheduling
function.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

from .subflow import Subflow


class MptcpScheduler(ABC):
    """Allocates a transfer's remaining bytes to subflow budgets."""

    name: str

    @abstractmethod
    def allocate(self, remaining: float, subflows: Sequence[Subflow],
                 budgets: Dict[str, float]) -> Dict[str, float]:
        """Split up to ``remaining`` bytes across subflows.

        ``budgets`` maps subflow name to the byte budget this tick.  Returns
        the bytes each subflow actually carries (never exceeding its budget,
        and summing to at most ``remaining``).
        """


class MinRttScheduler(MptcpScheduler):
    """The MPTCP default: fill subflows lowest-RTT first."""

    name = "minrtt"

    def allocate(self, remaining: float, subflows: Sequence[Subflow],
                 budgets: Dict[str, float]) -> Dict[str, float]:
        allocation = {sf.name: 0.0 for sf in subflows}
        ordered = sorted(subflows, key=lambda sf: (sf.path.rtt, sf.name))
        left = remaining
        for subflow in ordered:
            if left <= 0:
                break
            take = min(budgets.get(subflow.name, 0.0), left)
            allocation[subflow.name] = take
            left -= take
        return allocation


class RoundRobinScheduler(MptcpScheduler):
    """Alternate packets across subflows (proportional in the fluid limit)."""

    name = "roundrobin"

    def allocate(self, remaining: float, subflows: Sequence[Subflow],
                 budgets: Dict[str, float]) -> Dict[str, float]:
        allocation = {sf.name: 0.0 for sf in subflows}
        total_budget = sum(budgets.get(sf.name, 0.0) for sf in subflows)
        if total_budget <= 0:
            return allocation
        if remaining >= total_budget:
            for subflow in subflows:
                allocation[subflow.name] = budgets.get(subflow.name, 0.0)
            return allocation
        # Proportional split of the final sliver; cap at per-subflow budget.
        scale = remaining / total_budget
        for subflow in subflows:
            allocation[subflow.name] = budgets.get(subflow.name, 0.0) * scale
        return allocation


_SCHEDULERS = {
    MinRttScheduler.name: MinRttScheduler,
    RoundRobinScheduler.name: RoundRobinScheduler,
}


def make_scheduler(name: str) -> MptcpScheduler:
    """Look up a scheduler by name (``minrtt`` or ``roundrobin``)."""
    try:
        return _SCHEDULERS[name]()
    except KeyError:
        known = ", ".join(sorted(_SCHEDULERS))
        raise ValueError(f"unknown MPTCP scheduler {name!r} "
                         f"(known: {known})") from None


def scheduler_names() -> List[str]:
    return sorted(_SCHEDULERS)
