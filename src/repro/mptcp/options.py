"""MPTCP option signaling between client and server.

MP-DASH splits its scheduler: the *decision* function runs at the client
(next to the video player) and the *enforcement* function at the server
(which actually places bytes on paths).  The client communicates its
decision — "cellular subflow on/off" — with a reserved bit in the MPTCP DSS
(Data Sequence Signal) option, so a decision only takes effect at the server
after roughly one path round-trip.

:class:`SignalChannel` models that delay: values written now become visible
to readers one ``delay`` later, in write order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple


class SignalChannel:
    """A delayed single-value channel (latest-writer-wins after delay)."""

    def __init__(self, initial: Any, delay: float):
        if delay < 0:
            raise ValueError(f"delay cannot be negative: {delay!r}")
        self.delay = delay
        self._current: Any = initial
        self._in_flight: Deque[Tuple[float, Any]] = deque()

    def send(self, now: float, value: Any) -> None:
        """Write ``value``; it becomes readable at ``now + delay``."""
        # Skip the wire entirely for a no-op write so a steady stream of
        # identical decisions does not grow the queue.
        if not self._in_flight and value == self._current:
            return
        if self._in_flight and value == self._in_flight[-1][1]:
            return
        self._in_flight.append((now + self.delay, value))

    def current(self, now: float) -> Any:
        """The value visible to the reader (server) at time ``now``."""
        while self._in_flight and self._in_flight[0][0] <= now:
            _, self._current = self._in_flight.popleft()
        return self._current

    def pending(self) -> int:
        """Number of in-flight (not yet effective) writes."""
        return len(self._in_flight)

    def next_arrival(self) -> Optional[float]:
        """Absolute time the earliest in-flight write becomes visible.

        ``None`` when nothing is in flight.  This is a decision point for
        the event-driven kernel: between now and the returned instant the
        reader-visible value cannot change.
        """
        if not self._in_flight:
            return None
        return self._in_flight[0][0]

    def __repr__(self) -> str:
        return (f"<SignalChannel current={self._current!r} "
                f"pending={len(self._in_flight)} delay={self.delay}>")
