"""The MPTCP connection: subflow management, transfers, and the control hook.

This module plays the role of the paper's patched MPTCP stack.  A
:class:`MptcpConnection` owns one :class:`~repro.mptcp.subflow.Subflow` per
path, distributes an active transfer's bytes across them each tick using the
configured packet scheduler, and exposes the two cross-layer interfaces §3.2
describes:

* *downward*: a pluggable :class:`PathController` (the MP-DASH deadline-aware
  scheduler) that may enable/disable paths per tick.  Decisions travel to the
  server over a delayed :class:`~repro.mptcp.options.SignalChannel`, modeling
  the reserved DSS-option bit.
* *upward*: ``aggregate_throughput_estimate()``, the throughput the MP-DASH
  adapter feeds to throughput-based DASH algorithms (a player cannot see all
  paths on its own because MPTCP is transparent to it).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from ..estimators import ThroughputEstimator
from ..net.link import Path
from ..net.simulator import Simulator, Timer
from ..net.tcp import integrate_window
from ..obs.events import (PathStateRequested, SubflowStateChange,
                          TransferCompleted, TransferStarted,
                          new_packet_sent)
from .activity import ActivityLog
from .options import SignalChannel
from .schedulers import MptcpScheduler, make_scheduler
from .subflow import Subflow

#: Completion slack for float byte accounting.
_EPSILON = 0.5


class Transfer:
    """One request/response exchange (e.g. a video chunk download)."""

    def __init__(self, total_bytes: float, tag: str = "",
                 on_complete: Optional[Callable[["Transfer"], None]] = None):
        if total_bytes <= 0:
            raise ValueError(f"transfer size must be positive: {total_bytes!r}")
        #: Position in the owning connection's request sequence (assigned
        #: by ``start_transfer``; 0 for a standalone transfer).  Together
        #: with the connection id this names the transfer in trace events.
        self.id = 0
        self.tag = tag
        self.total_bytes = float(total_bytes)
        self.bytes_done = 0.0
        self._available: Optional[float] = None
        #: Invalidation hook: the event-driven kernel plants a callback
        #: here while the transfer is active, because a change in sender-
        #: side availability moves the predicted completion time.
        self._on_available_change: Optional[Callable[[], None]] = None
        self.per_path: Dict[str, float] = {}
        self.requested_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.on_complete = on_complete

    @property
    def available(self) -> Optional[float]:
        """When set, only this many bytes exist at the sender so far (a
        proxy still fetching from the origin); None = all available."""
        return self._available

    @available.setter
    def available(self, value: Optional[float]) -> None:
        if value == self._available:
            return
        notify = self._on_available_change
        if notify is not None:
            notify()  # settle deliveries under the old limit first
        self._available = value
        if notify is not None:
            notify()  # then re-predict completion under the new one

    @property
    def remaining(self) -> float:
        return max(0.0, self.total_bytes - self.bytes_done)

    @property
    def sendable(self) -> float:
        """Bytes the sender may put on the wire right now."""
        if self.available is None:
            return self.remaining
        return max(0.0, min(self.remaining,
                            self.available - self.bytes_done))

    @property
    def complete(self) -> bool:
        return self.remaining <= _EPSILON

    def add(self, path: str, num_bytes: float) -> None:
        self.bytes_done += num_bytes
        self.per_path[path] = self.per_path.get(path, 0.0) + num_bytes

    def duration(self) -> Optional[float]:
        """Request-to-last-byte latency, once finished."""
        if self.finished_at is None or self.requested_at is None:
            return None
        return self.finished_at - self.requested_at

    def throughput(self) -> Optional[float]:
        """Application-observed download throughput (bytes/second)."""
        elapsed = self.duration()
        if not elapsed:
            return None
        return self.total_bytes / elapsed

    def fraction_on(self, path: str) -> float:
        if self.bytes_done <= 0:
            return 0.0
        return self.per_path.get(path, 0.0) / self.bytes_done

    def __repr__(self) -> str:
        return (f"<Transfer #{self.id} {self.tag!r} "
                f"{self.bytes_done / 1e6:.2f}/{self.total_bytes / 1e6:.2f}MB>")


class PathController(ABC):
    """Per-tick hook deciding path enablement (the MP-DASH control point)."""

    @abstractmethod
    def on_tick(self, now: float, transfer: Optional[Transfer],
                connection: "MptcpConnection") -> Optional[Dict[str, bool]]:
        """Return desired enabled-state per path name, or None for no-op."""

    def on_transfer_start(self, now: float, transfer: Transfer,
                          connection: "MptcpConnection") -> None:
        """Called when a transfer's data starts flowing."""

    def on_transfer_complete(self, now: float, transfer: Transfer,
                             connection: "MptcpConnection") -> None:
        """Called when a transfer finishes."""

    def next_decision(self, now: float, transfer: Optional[Transfer],
                      connection: "MptcpConnection") -> Optional[float]:
        """Absolute time of this controller's next scheduled evaluation.

        Under the event-driven kernel :meth:`on_tick` runs at every kernel
        wakeup (transfer start/completion, trace breakpoints, signal
        arrivals) rather than on a fixed clock.  A controller whose
        decision can flip *between* those points — e.g. a deadline
        crossing — returns the time it wants to be woken; ``None`` means
        the natural wakeups suffice.  Controllers that genuinely need
        dense polling should run under ``kernel="tick"``.
        """
        return None


class MptcpConnection:
    """A multipath TCP connection over simulated paths."""

    def __init__(self, sim: Simulator, paths: Sequence[Path],
                 scheduler: str = "minrtt",
                 tick_interval: float = 0.01,
                 estimator_factory: Optional[Callable[[], ThroughputEstimator]] = None,
                 signaling_delay: Optional[float] = None,
                 activity_bin: float = 0.1,
                 subflow_reestablish: bool = False,
                 kernel: str = "fast"):
        """``subflow_reestablish`` switches from MP-DASH's skip-in-scheduler
        semantics to the add/remove-subflow alternative: disabled paths are
        torn down and pay a 1.5-RTT handshake plus a congestion restart
        when re-enabled (the §6 design-choice ablation).

        ``kernel`` selects the simulation strategy:

        * ``"fast"`` (default) — event-driven analytic kernel: the
          connection predicts its next decision point (transfer
          completion, trace breakpoint, signal arrival, controller
          wakeup), schedules exactly one event there, and advances each
          subflow in closed form across the quiescent interval.
        * ``"tick"`` — the reference implementation: a fixed
          ``tick_interval`` clock advancing every subflow each firing.

        Both kernels produce the same QoE/deadline/energy results up to a
        small O(tick_interval) discretization difference; the parity suite
        pins the tolerance.
        """
        if not paths:
            raise ValueError("an MPTCP connection needs at least one path")
        names = [p.name for p in paths]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate path names: {names}")
        self.id = sim.next_id()
        self.sim = sim
        self.bus = sim.bus
        self.tick_interval = tick_interval
        self.subflows: List[Subflow] = [
            Subflow(p, estimator_factory() if estimator_factory else None,
                    reconnect_delay=(1.5 * p.rtt if subflow_reestablish
                                     else 0.0),
                    bus=self.bus, conn=self.id)
            for p in paths
        ]
        self._by_name = {sf.name: sf for sf in self.subflows}
        self.scheduler: MptcpScheduler = make_scheduler(scheduler)
        self.controller: Optional[PathController] = None
        self.activity = ActivityLog(activity_bin)
        self.activity.attach(self.bus, conn=self.id)
        self._bin_width = self.activity.bin_width
        # Last *effective* (server-side) and last *requested* (client-side)
        # state per path, for flip detection on the bus.
        self._effective = {p.name: p.enabled for p in paths}
        self._requested = {p.name: p.enabled for p in paths}
        # Open PacketSent aggregates: path -> [bin_index, first_time,
        # bytes].  Flushed when the path's deliveries cross into the next
        # activity bin, and on close().
        self._open_bins: Dict[str, list] = {}
        # The primary path carries the DSS signaling; default delay one
        # primary-path RTT (pass 0 to study instantaneous signaling).
        self.primary = self.subflows[0]
        if signaling_delay is None:
            signaling_delay = self.primary.path.rtt
        self.signaling_delay = signaling_delay
        self._signals: Dict[str, SignalChannel] = {
            sf.name: SignalChannel(sf.path.enabled, signaling_delay)
            for sf in self.subflows
        }
        self._queue: Deque[Transfer] = deque()
        self._transfer_count = 0
        self._active: Optional[Transfer] = None
        self._activating = False
        if kernel not in ("fast", "tick"):
            raise ValueError(f"unknown kernel {kernel!r} "
                             f"(known: fast, tick)")
        self.kernel = kernel
        self._closed = False
        # True while inside a kernel callback (controller step, predict)
        # where the watermark is known current: readers skip re-syncing.
        self._stepping = False
        if kernel == "tick":
            self._ticker = sim.call_every(tick_interval, self._on_tick)
            self._timer = None
        else:
            self._ticker = None
            self._timer = Timer(sim, self._wake)
            # Watermark: subflow state is exact as of this instant; spans
            # up to ``sim.now`` are advanced lazily on demand.
            self._advanced_to = sim.now
            self._advancing = False
            # Cached completion prediction (absolute time), invalidated by
            # any event that changes delivery rates or the byte goal.
            self._completion: Optional[float] = None

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def start_transfer(self, total_bytes: float, tag: str = "",
                       on_complete: Optional[Callable[[Transfer], None]] = None
                       ) -> Transfer:
        """Issue a request for ``total_bytes``; data flows one RTT later."""
        transfer = Transfer(total_bytes, tag, on_complete)
        self._transfer_count += 1
        transfer.id = self._transfer_count
        transfer.requested_at = self.sim.now
        self._queue.append(transfer)
        if self._active is None:
            self._activate_next()
        return transfer

    def _activate_next(self) -> None:
        if self._active is not None or self._activating or not self._queue:
            return
        transfer = self._queue.popleft()
        self._activating = True
        # HTTP request + first response byte: one primary-path RTT.
        delay = max(0.0, transfer.requested_at + self.primary.path.rtt
                    - self.sim.now)
        self.sim.schedule(delay, self._begin, transfer)

    def _begin(self, transfer: Transfer) -> None:
        self._activating = False
        if self._closed:
            return
        if self._timer is not None:
            self._advance_to(self.sim.now)
        transfer.started_at = self.sim.now
        self._active = transfer
        self.bus.publish(TransferStarted(
            self.sim.now, transfer.id, transfer.tag, transfer.total_bytes,
            self.id))
        if self.controller is not None:
            self.controller.on_transfer_start(self.sim.now, transfer, self)
        if self._timer is not None:
            transfer._on_available_change = self._on_available_bump
            self._completion = None
            self._controller_step()
            self._predict()

    @property
    def active_transfer(self) -> Optional[Transfer]:
        return self._active

    @property
    def busy(self) -> bool:
        return (self._active is not None or self._activating
                or bool(self._queue))

    # ------------------------------------------------------------------
    # Path control (client decision -> delayed server enforcement)
    # ------------------------------------------------------------------
    def request_path_state(self, name: str, enabled: bool) -> None:
        """Client-side decision; takes effect after the signaling delay."""
        if name not in self._signals:
            raise KeyError(f"unknown path {name!r}")
        if enabled != self._requested[name]:
            self._requested[name] = enabled
            self.bus.publish(PathStateRequested(self.sim.now, name, enabled,
                                                self.id))
        self._signals[name].send(self.sim.now, enabled)
        # The arrival of this signal is a decision point: re-predict so the
        # kernel wakes exactly when the server-side state flips.  During a
        # controller step the wake's trailing predict covers every signal
        # sent in the batch; re-predicting per call would triple the
        # prediction work for nothing.
        if (self._timer is not None and not self._closed
                and not self._advancing and not self._stepping):
            self._advance_to(self.sim.now)
            self._predict()

    def path_state(self, name: str) -> bool:
        """Server-side effective enabled-state of ``name`` right now."""
        return self._signals[name].current(self.sim.now)

    def path_capacity(self, name: str) -> float:
        """Instantaneous post-throttle link capacity (bytes/second).

        Ground truth from the trace, not an estimate.  Controllers use it
        only to decide *when* to re-evaluate (the estimator lags reality
        after a capacity change); decisions themselves stay estimate-based.
        """
        return self.subflow(name).path.bandwidth_at(self.sim.now)

    def subflow(self, name: str) -> Subflow:
        try:
            return self._by_name[name]
        except KeyError:
            known = ", ".join(sorted(self._by_name))
            raise KeyError(f"unknown path {name!r} (known: {known})") from None

    def path_names(self) -> List[str]:
        return [sf.name for sf in self.subflows]

    # ------------------------------------------------------------------
    # Cross-layer estimates (the upward interface of §3.2)
    # ------------------------------------------------------------------
    def throughput_estimate(self, name: str) -> Optional[float]:
        """Estimated throughput of one subflow (bytes/second)."""
        if not self._stepping:
            self._sync_state()
        return self.subflow(name).throughput_estimate()

    def aggregate_throughput_estimate(self) -> Optional[float]:
        """Sum of per-subflow estimates across *all* paths.

        Includes currently disabled paths: the player should see the overall
        available network resources, not just what MP-DASH happens to be
        using this instant.
        """
        if not self._stepping:
            self._sync_state()
        estimates = [sf.throughput_estimate() for sf in self.subflows]
        known = [e for e in estimates if e is not None]
        if not known:
            return None
        return sum(known)

    # ------------------------------------------------------------------
    # Tick loop
    # ------------------------------------------------------------------
    def _on_tick(self) -> None:
        now = self.sim.now
        dt = self.tick_interval
        # 1. Apply in-flight enable/disable decisions at the server.
        for subflow in self.subflows:
            enabled = self._signals[subflow.name].current(now)
            subflow.path.enabled = enabled
            if enabled != self._effective[subflow.name]:
                self._effective[subflow.name] = enabled
                self.bus.publish(SubflowStateChange(now, subflow.name,
                                                    enabled, self.id))
            subflow.notice_state(now)

        transfer = self._active
        sending = transfer is not None

        # 2. Advance TCP state, collecting this tick's byte budgets.
        budgets: Dict[str, float] = {}
        for subflow in self.subflows:
            budgets[subflow.name] = subflow.advance(now, dt, sending)

        # 3. Move bytes.
        if sending:
            enabled = [sf for sf in self.subflows if sf.path.enabled]
            allocation = self.scheduler.allocate(transfer.sendable, enabled,
                                                 budgets)
            bin_index = int(now / self._bin_width)
            open_bins = self._open_bins
            for subflow in enabled:
                delivered = allocation.get(subflow.name, 0.0)
                if delivered <= 0:
                    continue
                subflow.account(delivered, dt,
                                budget=budgets.get(subflow.name))
                transfer.add(subflow.name, delivered)
                pending = open_bins.get(subflow.name)
                if pending is None:
                    open_bins[subflow.name] = [bin_index, now, delivered]
                elif pending[0] == bin_index:
                    pending[2] += delivered
                else:
                    self.bus.publish(new_packet_sent(
                        pending[1], subflow.name, pending[2], self.id))
                    pending[0] = bin_index
                    pending[1] = now
                    pending[2] = delivered
            if transfer.complete:
                self._finish(transfer)
                transfer = self._active  # may be None now

        # 4. Let the controller steer paths for the (possibly new) state.
        if self.controller is not None:
            desired = self.controller.on_tick(now, self._active, self)
            if desired:
                for name, enabled in desired.items():
                    self.request_path_state(name, enabled)

    def _finish(self, transfer: Transfer) -> None:
        # Under the fast kernel the last byte lands at the watermark (the
        # solved completion instant), which normally coincides with
        # ``sim.now`` because the wakeup was scheduled there.
        now = self._advanced_to if self._timer is not None else self.sim.now
        transfer.finished_at = now
        transfer._on_available_change = None
        self._active = None
        if self._timer is not None:
            self._completion = None
        self.bus.publish(TransferCompleted(
            now, transfer.id, transfer.tag, transfer.total_bytes,
            transfer.duration() or 0.0, self.id))
        if self.controller is not None:
            self.controller.on_transfer_complete(now, transfer, self)
        if transfer.on_complete is not None:
            transfer.on_complete(transfer)
        self._activate_next()

    # ------------------------------------------------------------------
    # Event-driven analytic kernel (kernel="fast")
    # ------------------------------------------------------------------
    # The connection keeps a watermark ``_advanced_to``: every subflow's
    # TCP window, estimator, and byte counters are exact as of that
    # instant.  Between decision points nothing is scheduled; when a
    # wakeup (or any external reader) needs current state, the span since
    # the watermark is advanced in closed form, split only at the
    # boundaries across which delivery rates are constant: bandwidth-trace
    # breakpoints, signal (DSS option) arrivals, reconnect completions,
    # and the solved transfer-completion instant.

    def sync(self) -> None:
        """Advance lazy subflow state to ``sim.now`` and re-predict.

        A no-op under the tick kernel; external readers (e.g. the 1 Hz
        ``PathSampler``) call this before inspecting cwnd or estimates.
        """
        self._sync_state()
        self._predict()

    def _sync_state(self) -> None:
        if self._timer is not None and not self._closed:
            self._advance_to(self.sim.now)

    def _wake(self) -> None:
        """The single scheduled decision-point event."""
        self._advance_to(self.sim.now)
        self._stepping = True
        try:
            self._controller_step()
            self._predict()
        finally:
            self._stepping = False

    def _controller_step(self) -> None:
        if self.controller is None or self._closed:
            return
        previous = self._stepping
        self._stepping = True
        try:
            desired = self.controller.on_tick(self.sim.now, self._active,
                                              self)
            if desired:
                for name, enabled in desired.items():
                    self.request_path_state(name, enabled)
        finally:
            self._stepping = previous

    def _on_available_bump(self) -> None:
        """Sender-side availability changed (proxy fetch progress).

        Called twice by the :class:`Transfer` setter: once before the new
        value is applied (settling deliveries under the old limit) and
        once after (re-predicting completion under the new one); both
        calls are idempotent.
        """
        if self._closed or self._advancing:
            return
        self._advance_to(self.sim.now)
        self._completion = None
        self._predict()

    def _apply_signals(self, now: float) -> None:
        """Apply in-flight enable/disable decisions effective by ``now``."""
        for subflow in self.subflows:
            enabled = self._signals[subflow.name].current(now)
            subflow.path.enabled = enabled
            if enabled != self._effective[subflow.name]:
                self._effective[subflow.name] = enabled
                # The delivering set changed: any cached completion
                # prediction is void.
                self._completion = None
                self.bus.publish(SubflowStateChange(now, subflow.name,
                                                    enabled, self.id))
            subflow.notice_state(now)

    def _next_signal_arrival(self) -> float:
        # Peeks the channels' queues directly: this runs on every sync
        # precheck, so the next_arrival() call-and-None-check per channel
        # is measurable overhead.
        earliest = math.inf
        for channel in self._signals.values():
            queue = channel._in_flight
            if queue and queue[0][0] < earliest:
                earliest = queue[0][0]
        return earliest

    def _emit_bin(self, name: str, index: int, time: float,
                  delivered: float) -> None:
        """Merge an analytic delivery step into the open PacketSent bins."""
        pending = self._open_bins.get(name)
        if pending is None:
            self._open_bins[name] = [index, time, delivered]
        elif pending[0] == index:
            pending[2] += delivered
        else:
            self.bus.publish(new_packet_sent(pending[1], name, pending[2],
                                             self.id))
            pending[0] = index
            pending[1] = time
            pending[2] = delivered

    def _advance_to(self, target: float) -> None:
        """Advance all subflow state from the watermark to ``target``.

        Walks quiescent spans: within each span the enabled set and every
        path's bandwidth are constant, so each subflow's delivery is a
        closed-form integral.  Completion is solved exactly inside the
        span that satisfies the transfer.
        """
        if self._advancing:
            return
        if (self._advanced_to >= target
                and self._next_signal_arrival() > target):
            # Already exact at ``target`` with nothing to apply: skip the
            # walk entirely.  Readers like ``throughput_estimate`` sync on
            # every call, so this no-op path is by far the most common.
            return
        self._advancing = True
        try:
            while True:
                t0 = self._advanced_to
                if t0 >= target - 1e-12:
                    # Snap the sub-tolerance sliver: a signal arrival at
                    # exactly ``target`` must drain even when the solved
                    # watermark stopped a few ulps short of it, or the
                    # prediction loop re-arms the same instant forever.
                    if target > t0:
                        self._advanced_to = t0 = target
                    self._apply_signals(t0)
                    break
                # Apply before advancing: an arrival landing exactly on
                # the watermark must take effect even on a no-op sync.
                self._apply_signals(t0)
                active = self._active
                t_sig = self._next_signal_arrival()
                if active is None:
                    self._advanced_to = min(target, t_sig)
                    continue
                # Bound the span by everything that can change a rate.
                t1 = min(target, t_sig)
                senders = []
                for sf in self.subflows:
                    if not sf.path.enabled:
                        continue
                    after = sf.usable_after
                    if t0 < after:
                        if after < t1:
                            t1 = after
                        continue
                    change = sf.path.next_change(t0)
                    if change < t1:
                        t1 = change
                    senders.append(sf)
                span = t1 - t0
                sendable = active.sendable
                if not senders or sendable <= _EPSILON:
                    # Application-limited (or no usable path): windows keep
                    # evolving but nothing is delivered.  Sub-epsilon
                    # residues count as nothing: chasing them would predict
                    # zero-length completion spans forever (``complete``
                    # itself allows the same slack).
                    for sf in senders:
                        sf.grow_analytic(t0, t1)
                    if t1 < target:
                        self._completion = None
                    self._advanced_to = t1
                    continue
                total = sum(sf.potential(t0, span) for sf in senders)
                if total < sendable - _EPSILON:
                    # The whole span flows at full potential.
                    for sf in senders:
                        delivered = sf.deliver_analytic(
                            t0, t1, self._bin_width, self._emit_bin)
                        active.add(sf.name, delivered)
                    if t1 < target:
                        self._completion = None
                    self._advanced_to = t1
                    if active.complete:
                        self._finish(active)
                    continue
                # Everything sendable fits in this span: solve the exact
                # instant the last byte lands and stop the flow there.
                t_end = t0 + self._solve_span(senders, t0, span, sendable)
                for sf in senders:
                    delivered = sf.deliver_analytic(
                        t0, t_end, self._bin_width, self._emit_bin)
                    active.add(sf.name, delivered)
                self._advanced_to = t_end
                if active.complete:
                    self._finish(active)
                # Otherwise the sender is starved (proxy still fetching);
                # the next iteration advances application-limited.
        finally:
            self._advancing = False

    def _solve_span(self, senders: List[Subflow], t0: float, span: float,
                    sendable: float) -> float:
        """Seconds into the span at which combined delivery = sendable."""
        if len(senders) == 1:
            return min(senders[0].time_to_deliver(t0, sendable), span)
        # Steady state: every sender pinned at its ceiling means delivery
        # is linear at the combined rate — solve by division, not search.
        total_rate = 0.0
        for sf in senders:
            rate = sf.steady_rate(t0)
            if rate is None:
                total_rate = -1.0
                break
            total_rate += rate
        if total_rate > 0.0:
            return min(sendable / total_rate, span)
        # Bisection over the combined delivery integral.  Per-sender state
        # is constant across iterations, so hoist the (idle-restarted)
        # window and bandwidth once and call the pure integral directly;
        # converge when the bracket is tighter than the completion slack
        # in bytes (the same ``_EPSILON`` the byte accounting uses).
        states = []
        floor_rate = 0.0
        for sf in senders:
            cwnd, ssthresh = sf.tcp.window_after_restart(t0)
            bw = sf.path.bandwidth_at(t0)
            states.append((cwnd, ssthresh, sf.tcp.rtt, bw))
            floor_rate += min(cwnd / sf.tcp.rtt, bw)
        tolerance = max(1e-12, _EPSILON / max(floor_rate, 1.0))
        lo, hi = 0.0, span
        for _ in range(80):
            mid = (lo + hi) / 2.0
            total = 0.0
            for cwnd, ssthresh, rtt, bw in states:
                total += integrate_window(cwnd, ssthresh, rtt, bw,
                                          dt_limit=mid)[0]
            if total >= sendable:
                hi = mid
            else:
                lo = mid
            if hi - lo <= tolerance:
                break
        return hi

    def _predict(self) -> None:
        """Schedule the single wakeup at the next decision point."""
        if self._timer is None or self._closed or self._advancing:
            return
        now = self._advanced_to
        t_next = self._next_signal_arrival()
        active = self._active
        if active is not None and active.started_at is not None:
            boundary = math.inf
            senders = []
            for sf in self.subflows:
                if not sf.path.enabled:
                    continue
                after = sf.usable_after
                if now < after:
                    if after < boundary:
                        boundary = after
                    continue
                change = sf.path.next_change(now)
                if change < boundary:
                    boundary = change
                senders.append(sf)
            if boundary < t_next:
                t_next = boundary
            sendable = active.sendable
            if senders and sendable > _EPSILON:
                if self._completion is None:
                    self._completion = self._predict_completion(
                        now, senders, sendable, t_next)
                if self._completion is not None and self._completion < t_next:
                    t_next = self._completion
            if self.controller is not None:
                wanted = self.controller.next_decision(self.sim.now, active,
                                                       self)
                if wanted is not None and wanted < t_next:
                    t_next = wanted
        self._timer.set(t_next if math.isfinite(t_next) else None)

    def _predict_completion(self, now: float, senders: List[Subflow],
                            sendable: float, bound: float) -> Optional[float]:
        """Solve when the active transfer's sendable bytes finish landing.

        Only valid while rates stay quiescent, so the solution is capped
        at ``bound`` (the nearest rate-changing boundary); past it the
        prediction is left uncached and re-solved at that boundary's
        wakeup.  Returns an absolute time or None.
        """
        if len(senders) == 1:
            finish = now + senders[0].time_to_deliver(now, sendable)
            return finish if finish <= bound else None
        if math.isinf(bound):
            # Bracket with the fastest path carrying everything alone.
            alone = min(sf.time_to_deliver(now, sendable) for sf in senders)
            if math.isinf(alone):
                return None
            span = alone
        else:
            span = bound - now
            if sum(sf.potential(now, span) for sf in senders) < sendable:
                return None
        return now + self._solve_span(senders, now, span, sendable)

    def flush_activity(self) -> None:
        """Publish any open per-path ``PacketSent`` aggregates.

        Until a path's deliveries cross into the next activity bin, its
        current bin rides in the connection; callers reading the activity
        log mid-session should flush first.  :meth:`close` does this
        automatically.
        """
        for name, pending in self._open_bins.items():
            if pending[2] > 0:
                self.bus.publish(new_packet_sent(pending[1], name,
                                                 pending[2], self.id))
        self._open_bins.clear()

    def close(self) -> None:
        """Stop the kernel (ends the connection's simulation activity)."""
        if self._timer is not None:
            self._sync_state()
            self._timer.cancel()
        else:
            self._ticker.stop()
        self.flush_activity()
        self._closed = True

    def __repr__(self) -> str:
        return (f"<MptcpConnection paths={self.path_names()} "
                f"scheduler={self.scheduler.name} busy={self.busy}>")
