"""The MPTCP connection: subflow management, transfers, and the control hook.

This module plays the role of the paper's patched MPTCP stack.  A
:class:`MptcpConnection` owns one :class:`~repro.mptcp.subflow.Subflow` per
path, distributes an active transfer's bytes across them each tick using the
configured packet scheduler, and exposes the two cross-layer interfaces §3.2
describes:

* *downward*: a pluggable :class:`PathController` (the MP-DASH deadline-aware
  scheduler) that may enable/disable paths per tick.  Decisions travel to the
  server over a delayed :class:`~repro.mptcp.options.SignalChannel`, modeling
  the reserved DSS-option bit.
* *upward*: ``aggregate_throughput_estimate()``, the throughput the MP-DASH
  adapter feeds to throughput-based DASH algorithms (a player cannot see all
  paths on its own because MPTCP is transparent to it).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from ..estimators import ThroughputEstimator
from ..net.link import Path
from ..net.simulator import Simulator
from ..obs.events import (PathStateRequested, SubflowStateChange,
                          TransferCompleted, TransferStarted,
                          new_packet_sent)
from .activity import ActivityLog
from .options import SignalChannel
from .schedulers import MptcpScheduler, make_scheduler
from .subflow import Subflow

#: Completion slack for float byte accounting.
_EPSILON = 0.5


class Transfer:
    """One request/response exchange (e.g. a video chunk download)."""

    def __init__(self, total_bytes: float, tag: str = "",
                 on_complete: Optional[Callable[["Transfer"], None]] = None):
        if total_bytes <= 0:
            raise ValueError(f"transfer size must be positive: {total_bytes!r}")
        #: Position in the owning connection's request sequence (assigned
        #: by ``start_transfer``; 0 for a standalone transfer).  Together
        #: with the connection id this names the transfer in trace events.
        self.id = 0
        self.tag = tag
        self.total_bytes = float(total_bytes)
        self.bytes_done = 0.0
        #: When set, only this many bytes exist at the sender so far (a
        #: proxy still fetching from the origin); None = all available.
        self.available: Optional[float] = None
        self.per_path: Dict[str, float] = {}
        self.requested_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.on_complete = on_complete

    @property
    def remaining(self) -> float:
        return max(0.0, self.total_bytes - self.bytes_done)

    @property
    def sendable(self) -> float:
        """Bytes the sender may put on the wire right now."""
        if self.available is None:
            return self.remaining
        return max(0.0, min(self.remaining,
                            self.available - self.bytes_done))

    @property
    def complete(self) -> bool:
        return self.remaining <= _EPSILON

    def add(self, path: str, num_bytes: float) -> None:
        self.bytes_done += num_bytes
        self.per_path[path] = self.per_path.get(path, 0.0) + num_bytes

    def duration(self) -> Optional[float]:
        """Request-to-last-byte latency, once finished."""
        if self.finished_at is None or self.requested_at is None:
            return None
        return self.finished_at - self.requested_at

    def throughput(self) -> Optional[float]:
        """Application-observed download throughput (bytes/second)."""
        elapsed = self.duration()
        if not elapsed:
            return None
        return self.total_bytes / elapsed

    def fraction_on(self, path: str) -> float:
        if self.bytes_done <= 0:
            return 0.0
        return self.per_path.get(path, 0.0) / self.bytes_done

    def __repr__(self) -> str:
        return (f"<Transfer #{self.id} {self.tag!r} "
                f"{self.bytes_done / 1e6:.2f}/{self.total_bytes / 1e6:.2f}MB>")


class PathController(ABC):
    """Per-tick hook deciding path enablement (the MP-DASH control point)."""

    @abstractmethod
    def on_tick(self, now: float, transfer: Optional[Transfer],
                connection: "MptcpConnection") -> Optional[Dict[str, bool]]:
        """Return desired enabled-state per path name, or None for no-op."""

    def on_transfer_start(self, now: float, transfer: Transfer,
                          connection: "MptcpConnection") -> None:
        """Called when a transfer's data starts flowing."""

    def on_transfer_complete(self, now: float, transfer: Transfer,
                             connection: "MptcpConnection") -> None:
        """Called when a transfer finishes."""


class MptcpConnection:
    """A multipath TCP connection over simulated paths."""

    def __init__(self, sim: Simulator, paths: Sequence[Path],
                 scheduler: str = "minrtt",
                 tick_interval: float = 0.01,
                 estimator_factory: Optional[Callable[[], ThroughputEstimator]] = None,
                 signaling_delay: Optional[float] = None,
                 activity_bin: float = 0.1,
                 subflow_reestablish: bool = False):
        """``subflow_reestablish`` switches from MP-DASH's skip-in-scheduler
        semantics to the add/remove-subflow alternative: disabled paths are
        torn down and pay a 1.5-RTT handshake plus a congestion restart
        when re-enabled (the §6 design-choice ablation)."""
        if not paths:
            raise ValueError("an MPTCP connection needs at least one path")
        names = [p.name for p in paths]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate path names: {names}")
        self.id = sim.next_id()
        self.sim = sim
        self.bus = sim.bus
        self.tick_interval = tick_interval
        self.subflows: List[Subflow] = [
            Subflow(p, estimator_factory() if estimator_factory else None,
                    reconnect_delay=(1.5 * p.rtt if subflow_reestablish
                                     else 0.0),
                    bus=self.bus, conn=self.id)
            for p in paths
        ]
        self._by_name = {sf.name: sf for sf in self.subflows}
        self.scheduler: MptcpScheduler = make_scheduler(scheduler)
        self.controller: Optional[PathController] = None
        self.activity = ActivityLog(activity_bin)
        self.activity.attach(self.bus, conn=self.id)
        self._bin_width = self.activity.bin_width
        # Last *effective* (server-side) and last *requested* (client-side)
        # state per path, for flip detection on the bus.
        self._effective = {p.name: p.enabled for p in paths}
        self._requested = {p.name: p.enabled for p in paths}
        # Open PacketSent aggregates: path -> [bin_index, first_time,
        # bytes].  Flushed when the path's deliveries cross into the next
        # activity bin, and on close().
        self._open_bins: Dict[str, list] = {}
        # The primary path carries the DSS signaling; default delay one
        # primary-path RTT (pass 0 to study instantaneous signaling).
        self.primary = self.subflows[0]
        if signaling_delay is None:
            signaling_delay = self.primary.path.rtt
        self.signaling_delay = signaling_delay
        self._signals: Dict[str, SignalChannel] = {
            sf.name: SignalChannel(sf.path.enabled, signaling_delay)
            for sf in self.subflows
        }
        self._queue: Deque[Transfer] = deque()
        self._transfer_count = 0
        self._active: Optional[Transfer] = None
        self._activating = False
        self._ticker = sim.call_every(tick_interval, self._on_tick)

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def start_transfer(self, total_bytes: float, tag: str = "",
                       on_complete: Optional[Callable[[Transfer], None]] = None
                       ) -> Transfer:
        """Issue a request for ``total_bytes``; data flows one RTT later."""
        transfer = Transfer(total_bytes, tag, on_complete)
        self._transfer_count += 1
        transfer.id = self._transfer_count
        transfer.requested_at = self.sim.now
        self._queue.append(transfer)
        if self._active is None:
            self._activate_next()
        return transfer

    def _activate_next(self) -> None:
        if self._active is not None or self._activating or not self._queue:
            return
        transfer = self._queue.popleft()
        self._activating = True
        # HTTP request + first response byte: one primary-path RTT.
        delay = max(0.0, transfer.requested_at + self.primary.path.rtt
                    - self.sim.now)
        self.sim.schedule(delay, self._begin, transfer)

    def _begin(self, transfer: Transfer) -> None:
        self._activating = False
        transfer.started_at = self.sim.now
        self._active = transfer
        self.bus.publish(TransferStarted(
            self.sim.now, transfer.id, transfer.tag, transfer.total_bytes,
            self.id))
        if self.controller is not None:
            self.controller.on_transfer_start(self.sim.now, transfer, self)

    @property
    def active_transfer(self) -> Optional[Transfer]:
        return self._active

    @property
    def busy(self) -> bool:
        return (self._active is not None or self._activating
                or bool(self._queue))

    # ------------------------------------------------------------------
    # Path control (client decision -> delayed server enforcement)
    # ------------------------------------------------------------------
    def request_path_state(self, name: str, enabled: bool) -> None:
        """Client-side decision; takes effect after the signaling delay."""
        if name not in self._signals:
            raise KeyError(f"unknown path {name!r}")
        if enabled != self._requested[name]:
            self._requested[name] = enabled
            self.bus.publish(PathStateRequested(self.sim.now, name, enabled,
                                                self.id))
        self._signals[name].send(self.sim.now, enabled)

    def path_state(self, name: str) -> bool:
        """Server-side effective enabled-state of ``name`` right now."""
        return self._signals[name].current(self.sim.now)

    def subflow(self, name: str) -> Subflow:
        try:
            return self._by_name[name]
        except KeyError:
            known = ", ".join(sorted(self._by_name))
            raise KeyError(f"unknown path {name!r} (known: {known})") from None

    def path_names(self) -> List[str]:
        return [sf.name for sf in self.subflows]

    # ------------------------------------------------------------------
    # Cross-layer estimates (the upward interface of §3.2)
    # ------------------------------------------------------------------
    def throughput_estimate(self, name: str) -> Optional[float]:
        """Estimated throughput of one subflow (bytes/second)."""
        return self.subflow(name).throughput_estimate()

    def aggregate_throughput_estimate(self) -> Optional[float]:
        """Sum of per-subflow estimates across *all* paths.

        Includes currently disabled paths: the player should see the overall
        available network resources, not just what MP-DASH happens to be
        using this instant.
        """
        estimates = [sf.throughput_estimate() for sf in self.subflows]
        known = [e for e in estimates if e is not None]
        if not known:
            return None
        return sum(known)

    # ------------------------------------------------------------------
    # Tick loop
    # ------------------------------------------------------------------
    def _on_tick(self) -> None:
        now = self.sim.now
        dt = self.tick_interval
        # 1. Apply in-flight enable/disable decisions at the server.
        for subflow in self.subflows:
            enabled = self._signals[subflow.name].current(now)
            subflow.path.enabled = enabled
            if enabled != self._effective[subflow.name]:
                self._effective[subflow.name] = enabled
                self.bus.publish(SubflowStateChange(now, subflow.name,
                                                    enabled, self.id))
            subflow.notice_state(now)

        transfer = self._active
        sending = transfer is not None

        # 2. Advance TCP state, collecting this tick's byte budgets.
        budgets: Dict[str, float] = {}
        for subflow in self.subflows:
            budgets[subflow.name] = subflow.advance(now, dt, sending)

        # 3. Move bytes.
        if sending:
            enabled = [sf for sf in self.subflows if sf.path.enabled]
            allocation = self.scheduler.allocate(transfer.sendable, enabled,
                                                 budgets)
            bin_index = int(now / self._bin_width)
            open_bins = self._open_bins
            for subflow in enabled:
                delivered = allocation.get(subflow.name, 0.0)
                if delivered <= 0:
                    continue
                subflow.account(delivered, dt,
                                budget=budgets.get(subflow.name))
                transfer.add(subflow.name, delivered)
                pending = open_bins.get(subflow.name)
                if pending is None:
                    open_bins[subflow.name] = [bin_index, now, delivered]
                elif pending[0] == bin_index:
                    pending[2] += delivered
                else:
                    self.bus.publish(new_packet_sent(
                        pending[1], subflow.name, pending[2], self.id))
                    pending[0] = bin_index
                    pending[1] = now
                    pending[2] = delivered
            if transfer.complete:
                self._finish(transfer)
                transfer = self._active  # may be None now

        # 4. Let the controller steer paths for the (possibly new) state.
        if self.controller is not None:
            desired = self.controller.on_tick(now, self._active, self)
            if desired:
                for name, enabled in desired.items():
                    self.request_path_state(name, enabled)

    def _finish(self, transfer: Transfer) -> None:
        transfer.finished_at = self.sim.now
        self._active = None
        self.bus.publish(TransferCompleted(
            self.sim.now, transfer.id, transfer.tag, transfer.total_bytes,
            transfer.duration() or 0.0, self.id))
        if self.controller is not None:
            self.controller.on_transfer_complete(self.sim.now, transfer, self)
        if transfer.on_complete is not None:
            transfer.on_complete(transfer)
        self._activate_next()

    def flush_activity(self) -> None:
        """Publish any open per-path ``PacketSent`` aggregates.

        Until a path's deliveries cross into the next activity bin, its
        current bin rides in the connection; callers reading the activity
        log mid-session should flush first.  :meth:`close` does this
        automatically.
        """
        for name, pending in self._open_bins.items():
            if pending[2] > 0:
                self.bus.publish(new_packet_sent(pending[1], name,
                                                 pending[2], self.id))
        self._open_bins.clear()

    def close(self) -> None:
        """Stop the tick loop (ends the connection's simulation activity)."""
        self.flush_activity()
        self._ticker.stop()

    def __repr__(self) -> str:
        return (f"<MptcpConnection paths={self.path_names()} "
                f"scheduler={self.scheduler.name} busy={self.busy}>")
