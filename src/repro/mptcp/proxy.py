"""TCP-splitting proxy: MP-DASH without touching the video server (§8).

"By using standard TCP splitting proxies with MP-DASH enabled MPTCP, we can
make MP-DASH fully transparent to video servers.  The proxy is TLS/SSL
friendly as it runs at the transport layer."

The proxy terminates two legs:

* **origin leg** — a vanilla single-path TCP connection to the unmodified
  video server (its own fluid congestion state over one path), and
* **client leg** — the MP-DASH-enabled MPTCP connection to the client.

A response streams through the proxy's buffer: the client leg can only
relay bytes the origin leg has already delivered (cut-through, not
store-and-forward), so the end-to-end rate is governed by the slower leg —
and the MP-DASH machinery on the client leg (preferences, deadlines,
path toggling) operates completely unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.link import Path
from ..net.simulator import Simulator
from ..net.tcp import TcpState
from .connection import MptcpConnection, Transfer


class SplittingProxy:
    """Relays transfers from a single-path origin onto an MPTCP client leg."""

    def __init__(self, sim: Simulator, origin_path: Path,
                 client_leg: MptcpConnection,
                 tick_interval: float = 0.01):
        if tick_interval <= 0:
            raise ValueError(
                f"tick_interval must be positive: {tick_interval!r}")
        self.sim = sim
        self.origin_path = origin_path
        self.client_leg = client_leg
        self.tick_interval = tick_interval
        #: Total bytes fetched from the origin across all transfers.
        self.origin_bytes = 0.0
        self._active: Optional[dict] = None
        self._queue: list = []
        self._ticker = sim.call_every(tick_interval, self._on_tick)

    # ------------------------------------------------------------------
    def fetch(self, size: float, tag: str = "",
              on_complete: Optional[Callable[[Transfer], None]] = None
              ) -> Transfer:
        """Fetch ``size`` bytes from the origin, relayed to the client.

        Returns the client-leg transfer; its ``available`` watermark rises
        as origin bytes arrive at the proxy.
        """
        if size <= 0:
            raise ValueError(f"size must be positive: {size!r}")
        transfer = self.client_leg.start_transfer(size, tag=tag,
                                                  on_complete=on_complete)
        transfer.available = 0.0
        job = {"transfer": transfer, "fetched": 0.0, "size": float(size),
               "tcp": TcpState(self.origin_path.rtt),
               # The proxy's own request to the origin costs one RTT.
               "starts_at": self.sim.now + self.origin_path.rtt}
        self._queue.append(job)
        return transfer

    def _on_tick(self) -> None:
        now = self.sim.now
        if self._active is None:
            while self._queue and self._queue[0]["transfer"].complete:
                self._queue.pop(0)  # cancelled/finished without us
            if not self._queue:
                return
            if self._queue[0]["starts_at"] > now:
                return
            self._active = self._queue.pop(0)
        job = self._active
        remaining = job["size"] - job["fetched"]
        if remaining > 0:
            delivered = job["tcp"].advance(
                now, self.tick_interval,
                self.origin_path.bandwidth_at(now), sending=True)
            delivered = min(delivered, remaining)
            job["fetched"] += delivered
            self.origin_bytes += delivered
            job["transfer"].available = job["fetched"]
        if job["fetched"] >= job["size"] - 1e-6:
            job["transfer"].available = job["size"]
            self._active = None

    def close(self) -> None:
        self._ticker.stop()

    def __repr__(self) -> str:
        return (f"<SplittingProxy origin={self.origin_path.name} "
                f"relayed={self.origin_bytes / 1e6:.2f}MB>")
