"""Binned per-path byte activity log.

Both the radio energy model and the analysis tool consume the transport's
traffic pattern: *when* each interface carried bytes and how many.  The log
aggregates per-tick deliveries into fixed-width bins so a ten-minute session
stays small while still resolving the bursts and idle gaps that drive radio
state (the paper's Figure 6 contrasts exactly these patterns).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs.bus import EventBus, Handler
from ..obs.events import PacketSent


class ActivityLog:
    """Bytes per path per fixed-width time bin.

    Lives either standalone (tests feed it with :meth:`record`) or as a
    subscriber of the session bus via :meth:`attach`, where it bins every
    :class:`~repro.obs.events.PacketSent` the transport publishes.
    """

    def __init__(self, bin_width: float = 0.1):
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive: {bin_width!r}")
        self.bin_width = bin_width
        self._bins: Dict[str, Dict[int, float]] = {}

    def attach(self, bus: EventBus, conn: Optional[int] = None) -> Handler:
        """Subscribe to ``PacketSent`` on ``bus``.

        ``conn`` restricts the view to one connection's packets (several
        connections may share a simulator, e.g. behind a splitting proxy).
        Returns the handler so callers can ``bus.unsubscribe`` it.
        """
        # :meth:`record` inlined: this is the hottest subscription in a
        # session (one call per path per activity bin).
        bin_width = self.bin_width
        bins = self._bins
        if conn is None:
            def _on_packet(event: PacketSent) -> None:
                num_bytes = event.num_bytes
                if num_bytes <= 0:
                    return
                per_path = bins.setdefault(event.path, {})
                index = int(event.time / bin_width)
                per_path[index] = per_path.get(index, 0.0) + num_bytes
        else:
            def _on_packet(event: PacketSent) -> None:
                num_bytes = event.num_bytes
                if event.conn != conn or num_bytes <= 0:
                    return
                per_path = bins.setdefault(event.path, {})
                index = int(event.time / bin_width)
                per_path[index] = per_path.get(index, 0.0) + num_bytes
        return bus.subscribe(PacketSent, _on_packet)

    def record(self, time: float, path: str, num_bytes: float) -> None:
        """Record ``num_bytes`` carried by ``path`` at ``time``."""
        if num_bytes <= 0:
            return
        index = int(time / self.bin_width)
        per_path = self._bins.setdefault(path, {})
        per_path[index] = per_path.get(index, 0.0) + num_bytes

    def paths(self) -> List[str]:
        return sorted(self._bins)

    def total_bytes(self, path: str) -> float:
        return sum(self._bins.get(path, {}).values())

    def series(self, path: str, until: float = None) -> Tuple[List[float], List[float]]:
        """Dense (bin_start_times, bytes) series for ``path``.

        Empty bins are filled with zeros so the series is uniform; ``until``
        extends/limits the horizon (defaults to the last non-empty bin).
        """
        per_path = self._bins.get(path, {})
        if not per_path and until is None:
            return [], []
        last = max(per_path) if per_path else 0
        if until is not None:
            last = int(until / self.bin_width)
        times = [i * self.bin_width for i in range(last + 1)]
        values = [per_path.get(i, 0.0) for i in range(last + 1)]
        return times, values

    def throughput_series(self, path: str, until: float = None
                          ) -> Tuple[List[float], List[float]]:
        """Like :meth:`series` but in bytes/second."""
        times, values = self.series(path, until)
        return times, [v / self.bin_width for v in values]

    def bytes_between(self, path: str, start: float, end: float) -> float:
        """Bytes carried by ``path`` in the half-open window [start, end)."""
        if end <= start:
            return 0.0
        first = int(start / self.bin_width)
        last = int(end / self.bin_width)
        per_path = self._bins.get(path, {})
        return sum(per_path.get(i, 0.0) for i in range(first, last + 1)
                   if per_path.get(i))

    def active_windows(self, path: str, idle_threshold: float
                       ) -> List[Tuple[float, float]]:
        """Merge activity into (start, end) windows separated by idle gaps.

        Two bursts closer than ``idle_threshold`` merge into one window.
        This is the primitive the radio energy model uses to attribute
        active time and tails.
        """
        per_path = self._bins.get(path, {})
        if not per_path:
            return []
        windows: List[Tuple[float, float]] = []
        start = end = None
        for index in sorted(per_path):
            bin_start = index * self.bin_width
            bin_end = bin_start + self.bin_width
            if start is None:
                start, end = bin_start, bin_end
            elif bin_start - end <= idle_threshold:
                end = bin_end
            else:
                windows.append((start, end))
                start, end = bin_start, bin_end
        windows.append((start, end))
        return windows

    def __repr__(self) -> str:
        totals = {p: round(self.total_bytes(p) / 1e6, 2) for p in self.paths()}
        return f"<ActivityLog MB={totals}>"
