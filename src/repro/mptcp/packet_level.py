"""Packet-granularity MPTCP download model (cross-validation).

The main transport (``repro.mptcp.connection``) is a fluid model: per tick,
each subflow moves ``rate x dt`` bytes.  That is fast enough for the
33-location field study, but it abstracts packet effects — ACK clocking,
queue build-up, drops, retransmissions.  This module implements the same
download at *packet* granularity:

* every packet is an event: it serializes through its path's link at the
  trace rate, crosses the propagation delay, and its ACK returns one RTT
  after the send;
* per-subflow NewReno congestion control: slow start to ``ssthresh``,
  congestion avoidance (+1 MSS per RTT), drops on queue overflow with
  multiplicative decrease and retransmission;
* the minRTT packet scheduler assigns each transmission opportunity, and
  Algorithm 1 runs per ACK (its natural granularity in the kernel) with a
  Holt-Winters estimate fed by ACK-clocked delivery samples.

``tests/test_packet_level.py`` and ``benchmarks/bench_validation.py`` use
it to confirm the fluid model's durations and per-path byte splits — the
quantities every headline result rests on — at packet resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..estimators import HoltWinters
from ..net.link import Path
from ..net.simulator import Simulator
from ..net.units import PACKET_SIZE

#: Initial window (packets), matching the fluid model's RFC 6928 start.
INITIAL_WINDOW = 10.0

#: Maximum standing queue a path's link may hold before dropping (seconds
#: of serialization); the testbed avoids bufferbloat, so this is small.
MAX_QUEUE_DELAY = 0.12


class _PacketSubflow:
    """Per-path transmission state for the packet model."""

    def __init__(self, path: Path):
        self.path = path
        self.cwnd = INITIAL_WINDOW
        self.ssthresh = float("inf")
        self.in_flight = 0
        self.link_free_at = 0.0
        self.bytes_acked = 0.0
        self.drops = 0
        self.estimator = HoltWinters()
        self._sample_bytes = 0.0
        self._sample_started: Optional[float] = None
        self._recovery_until = 0.0

    @property
    def name(self) -> str:
        return self.path.name

    def window_space(self) -> bool:
        return self.in_flight < int(self.cwnd)

    def on_ack(self, now: float, num_bytes: float) -> None:
        self.in_flight -= 1
        self.bytes_acked += num_bytes
        if self.cwnd < self.ssthresh:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / max(self.cwnd, 1.0)
        self._sample_bytes += num_bytes
        if self._sample_started is None:
            self._sample_started = now - self.path.rtt
        window = now - self._sample_started
        if window >= max(self.path.rtt, 0.05):
            self.estimator.update(self._sample_bytes / window)
            self._sample_bytes = 0.0
            self._sample_started = now

    def on_loss(self, now: float) -> None:
        self.in_flight -= 1
        self.drops += 1
        if now >= self._recovery_until:
            # One multiplicative decrease per RTT of losses.
            self.ssthresh = max(self.cwnd / 2.0, 2.0)
            self.cwnd = self.ssthresh
            self._recovery_until = now + self.path.rtt

    def throughput_estimate(self) -> Optional[float]:
        return self.estimator.predict()


@dataclass
class PacketDownloadResult:
    """Outcome of one packet-level download."""

    duration: float
    bytes_per_path: Dict[str, float]
    drops: Dict[str, int]
    missed_deadline: bool = False
    enable_events: int = 0

    @property
    def total_bytes(self) -> float:
        return sum(self.bytes_per_path.values())

    def fraction_on(self, path: str) -> float:
        total = self.total_bytes
        if total <= 0:
            return 0.0
        return self.bytes_per_path.get(path, 0.0) / total


class PacketLevelDownload:
    """One deadline-(optionally-)bounded download at packet granularity."""

    def __init__(self, sim: Simulator, paths: List[Path], size: float,
                 deadline: Optional[float] = None, alpha: float = 1.0,
                 preferred: str = "wifi", costly: str = "cellular"):
        if size <= 0:
            raise ValueError(f"size must be positive: {size!r}")
        if not paths:
            raise ValueError("need at least one path")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive: {deadline!r}")
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1]: {alpha!r}")
        self.sim = sim
        self.size = float(size)
        self.deadline = deadline
        self.alpha = alpha
        self.preferred = preferred
        self.costly = costly
        self.subflows = {p.name: _PacketSubflow(p) for p in paths}
        self._unsent = self.size
        self._acked = 0.0
        self._started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._costly_enabled = deadline is None
        self.enable_events = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started_at = self.sim.now
        self._pump()

    @property
    def complete(self) -> bool:
        return self.finished_at is not None

    def result(self) -> PacketDownloadResult:
        if self.finished_at is None:
            raise RuntimeError("download has not finished")
        duration = self.finished_at - (self._started_at or 0.0)
        missed = (self.deadline is not None and duration > self.deadline)
        return PacketDownloadResult(
            duration=duration,
            bytes_per_path={name: sf.bytes_acked
                            for name, sf in self.subflows.items()},
            drops={name: sf.drops for name, sf in self.subflows.items()},
            missed_deadline=missed, enable_events=self.enable_events)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _usable(self, subflow: _PacketSubflow) -> bool:
        if subflow.name == self.costly and not self._costly_enabled:
            return False
        return subflow.path.enabled

    def _pump(self) -> None:
        """Fill every usable subflow's window, minRTT first."""
        while self._unsent > 0:
            candidates = [sf for sf in self.subflows.values()
                          if self._usable(sf) and sf.window_space()]
            if not candidates:
                return
            subflow = min(candidates, key=lambda sf: sf.path.rtt)
            self._send_packet(subflow)

    def _send_packet(self, subflow: _PacketSubflow) -> None:
        now = self.sim.now
        size = min(PACKET_SIZE, self._unsent)
        self._unsent -= size
        subflow.in_flight += 1
        rate = max(subflow.path.bandwidth_at(now), 1.0)
        depart = max(now, subflow.link_free_at)
        queue_delay = depart - now
        serialization = size / rate
        subflow.link_free_at = depart + serialization
        if queue_delay > MAX_QUEUE_DELAY:
            # Tail drop: the loss is detected about one RTT later.
            self.sim.schedule(queue_delay + subflow.path.rtt,
                              self._on_loss, subflow, size)
            return
        ack_delay = queue_delay + serialization + subflow.path.rtt
        self.sim.schedule(ack_delay, self._on_ack, subflow, size)

    def _on_loss(self, subflow: _PacketSubflow, size: float) -> None:
        subflow.on_loss(self.sim.now)
        self._unsent += size  # retransmit
        self._pump()

    def _on_ack(self, subflow: _PacketSubflow, size: float) -> None:
        if self.complete:
            return
        now = self.sim.now
        subflow.on_ack(now, size)
        self._acked += size
        if self._acked >= self.size - 0.5:
            self.finished_at = now
            return
        self._run_algorithm1(now)
        self._pump()

    # ------------------------------------------------------------------
    # Algorithm 1, per ACK
    # ------------------------------------------------------------------
    def _run_algorithm1(self, now: float) -> None:
        if self.deadline is None or self._started_at is None:
            return
        elapsed = now - self._started_at
        if elapsed >= self.deadline:
            # Deadline passed: every interface runs from here on.
            if not self._costly_enabled:
                self._costly_enabled = True
                self.enable_events += 1
            return
        preferred = self.subflows.get(self.preferred)
        if preferred is None:
            return
        estimate = preferred.throughput_estimate()
        if estimate is None:
            estimate = preferred.path.bandwidth_at(now)
        remaining = self.size - self._acked
        time_left = self.alpha * self.deadline - elapsed
        can_make_it = max(time_left, 0.0) * estimate >= remaining
        if can_make_it and self._costly_enabled:
            self._costly_enabled = False
        elif not can_make_it and not self._costly_enabled:
            self._costly_enabled = True
            self.enable_events += 1


def run_packet_download(paths: List[Path], size: float,
                        deadline: Optional[float] = None,
                        alpha: float = 1.0,
                        time_cap: float = 600.0) -> PacketDownloadResult:
    """Convenience wrapper: simulate one download to completion."""
    sim = Simulator()
    download = PacketLevelDownload(sim, paths, size, deadline=deadline,
                                   alpha=alpha)
    download.start()
    while not download.complete and sim.now < time_cap:
        sim.run(until=sim.now + 1.0)
    if not download.complete:
        raise RuntimeError(
            f"packet-level download did not finish within {time_cap}s")
    return download.result()
