"""MPTCP transport: subflows, packet schedulers, DSS signaling, connection."""

from .activity import ActivityLog
from .connection import MptcpConnection, PathController, Transfer
from .options import SignalChannel
from .proxy import SplittingProxy
from .packet_level import (PacketDownloadResult, PacketLevelDownload,
                           run_packet_download)
from .schedulers import (MinRttScheduler, MptcpScheduler, RoundRobinScheduler,
                         make_scheduler, scheduler_names)
from .subflow import Subflow

__all__ = [
    "ActivityLog", "MinRttScheduler", "MptcpConnection", "MptcpScheduler",
    "PacketDownloadResult", "PacketLevelDownload", "PathController",
    "RoundRobinScheduler", "SignalChannel", "Subflow", "Transfer",
    "SplittingProxy", "make_scheduler", "run_packet_download",
    "scheduler_names",
]
