"""One MPTCP subflow: a path plus its TCP state and accounting.

A subflow owns the fluid TCP model for its path, a running throughput
estimator (Holt-Winters by default — the estimator MP-DASH consults as
``R_WiFi`` in Algorithm 1), and byte counters used by the analysis tool and
the energy model.
"""

from __future__ import annotations

from typing import Optional

from ..estimators import HoltWinters, ThroughputEstimator
from ..net.link import Path
from ..net.tcp import TcpState
from ..obs.bus import EventBus
from ..obs.events import CwndRestarted, SubflowReconnected


#: Minimum window over which a throughput sample is formed before being fed
#: to the estimator.  One sample per ~RTT mirrors how a receiver-side
#: estimator would see ACK clocking.
MIN_SAMPLE_INTERVAL = 0.05


class Subflow:
    """Transport state of a single path within an MPTCP connection."""

    def __init__(self, path: Path,
                 estimator: Optional[ThroughputEstimator] = None,
                 reconnect_delay: float = 0.0,
                 bus: Optional[EventBus] = None, conn: int = 0):
        """``reconnect_delay`` models the eMPTCP-style alternative to
        MP-DASH's skip-in-scheduler design: tearing the subflow down when
        disabled and re-establishing it on enable, paying a handshake delay
        and a congestion restart each time (§6 argues against this).  Zero
        (the default) gives MP-DASH's skip semantics: the subflow stays
        established and is merely skipped, so re-enabling is free.

        ``bus``/``conn`` make the subflow observable: reconnects and TCP
        idle restarts are published as typed events.
        """
        if reconnect_delay < 0:
            raise ValueError(
                f"reconnect_delay cannot be negative: {reconnect_delay!r}")
        self.path = path
        self.bus = bus
        self.conn = conn
        self.tcp = TcpState(path.rtt)
        if bus is not None:
            self.tcp.on_idle_restart = self._publish_restart
        self.estimator = estimator if estimator is not None else HoltWinters()
        self.reconnect_delay = reconnect_delay
        self.total_bytes = 0
        self.reconnects = 0
        self._was_enabled = path.enabled
        self._usable_after = 0.0
        # Sample accumulation for the estimator.
        self._sample_bytes = 0.0
        self._sample_busy = 0.0
        self._sample_interval = max(path.rtt, MIN_SAMPLE_INTERVAL)

    @property
    def name(self) -> str:
        return self.path.name

    def _publish_restart(self, now: float) -> None:
        self.bus.publish(CwndRestarted(now, self.name, self.conn))

    def notice_state(self, now: float) -> None:
        """Track enable/disable transitions for reconnect semantics."""
        enabled = self.path.enabled
        if enabled and not self._was_enabled and self.reconnect_delay > 0:
            # Re-adding a torn-down subflow: handshake plus a fresh window.
            self._usable_after = now + self.reconnect_delay
            self.tcp.reset()
            self.reconnects += 1
            if self.bus is not None:
                self.bus.publish(SubflowReconnected(now, self.name,
                                                    self.reconnects,
                                                    self.conn))
        self._was_enabled = enabled

    def _usable(self, now: float) -> bool:
        return self.path.enabled and now >= self._usable_after

    def deliverable(self, now: float, dt: float) -> float:
        """Bytes this subflow could carry in the next ``dt`` seconds."""
        if not self._usable(now):
            return 0.0
        return self.tcp.rate(self.path.bandwidth_at(now)) * dt

    def advance(self, now: float, dt: float, sending: bool) -> float:
        """Advance TCP state; return the byte budget for this tick."""
        if not self._usable(now):
            return 0.0
        return self.tcp.advance(now, dt, self.path.bandwidth_at(now), sending)

    # ------------------------------------------------------------------
    # Analytic span interface (event-driven kernel)
    # ------------------------------------------------------------------
    def usable(self, now: float) -> bool:
        """Whether the scheduler may place bytes here right now."""
        return self._usable(now)

    @property
    def usable_after(self) -> float:
        """Earliest time a re-established subflow becomes usable again."""
        return self._usable_after

    def potential(self, now: float, dt: float) -> float:
        """Pure closed-form bytes this subflow could carry in ``dt`` seconds.

        Assumes the bandwidth holding at ``now`` stays constant — callers
        bound ``dt`` by the next trace breakpoint.  Unlike
        :meth:`deliverable` (one tick at the instantaneous rate) this
        integrates the full window trajectory, so it is exact over long
        quiescent spans.
        """
        if dt <= 0 or not self._usable(now):
            return 0.0
        return self.tcp.potential_bytes(now, dt, self.path.bandwidth_at(now))

    def time_to_deliver(self, now: float, target_bytes: float) -> float:
        """Pure: seconds of continuous sending to carry ``target_bytes``."""
        if not self._usable(now):
            return float("inf")
        return self.tcp.time_to_deliver(now, target_bytes,
                                        self.path.bandwidth_at(now))

    def steady_rate(self, now: float) -> Optional[float]:
        """Constant delivery rate while provably pinned, else None.

        See :meth:`~repro.net.tcp.TcpState.pinned_rate`; the connection's
        completion solver uses it to replace bisection with an exact
        division when every sender is in steady state.
        """
        if not self._usable(now):
            return None
        return self.tcp.pinned_rate(now, self.path.bandwidth_at(now))

    def deliver_analytic(self, start: float, end: float, bin_width: float,
                         emit) -> float:
        """Commit continuous network-limited sending over ``[start, end]``.

        Advances the TCP window in closed form, feeds the throughput
        estimator one sample per ``_sample_interval`` of busy time (the
        same cadence :meth:`account` produces under the tick kernel), and
        reports per-activity-bin byte totals through
        ``emit(name, bin_index, bin_start_time, bytes)``.  Returns the
        total bytes delivered.  Bandwidth is read once at ``start``;
        callers bound the span by the next trace breakpoint.
        """
        if end <= start:
            return 0.0
        tcp = self.tcp
        bw = self.path.bandwidth_at(start)
        total = 0.0
        t = start
        index = int(start / bin_width)
        interval = self._sample_interval
        while t < end - 1e-12:
            # Once the window is pinned at the ceiling it stays there for
            # the rest of the span (bandwidth is constant within it), so
            # the remainder is linear delivery at ``bw``: walk it one
            # activity bin at a time, folding the estimator's busy-time
            # samples in closed form instead of splitting steps at every
            # sample boundary.
            if tcp.pinned_rate(t, bw) is not None:
                estimator = self.estimator
                while t < end - 1e-12:
                    bin_end = (index + 1) * bin_width
                    step_end = bin_end if bin_end < end else end
                    dt = step_end - t
                    delta = bw * dt
                    self.total_bytes += delta
                    total += delta
                    if delta > 0:
                        busy = self._sample_busy + dt
                        if busy >= interval - 1e-12:
                            head = interval - self._sample_busy
                            estimator.update((self._sample_bytes
                                              + bw * head) / interval)
                            busy -= interval
                            while busy >= interval - 1e-12:
                                estimator.update(bw)
                                busy -= interval
                            self._sample_busy = busy if busy > 0.0 else 0.0
                            self._sample_bytes = bw * self._sample_busy
                        else:
                            self._sample_busy = busy
                            self._sample_bytes += delta
                        emit(self.name, index, t, delta)
                    t = step_end
                    if step_end >= bin_end - 1e-12:
                        index += 1
                tcp.last_send_time = end
                return total
            bin_end = (index + 1) * bin_width
            sample_end = t + (interval - self._sample_busy)
            step_end = min(end, bin_end, sample_end)
            dt = step_end - t
            delta = tcp.advance_analytic(t, dt, bw)
            self.total_bytes += delta
            total += delta
            if delta > 0:
                # Always network-limited: the span runs at full potential.
                self._sample_bytes += delta
                self._sample_busy += dt
                if self._sample_busy >= interval - 1e-12:
                    self.estimator.update(self._sample_bytes
                                          / self._sample_busy)
                    self._sample_bytes = 0.0
                    self._sample_busy = 0.0
                emit(self.name, index, t, delta)
            t = step_end
            if step_end >= bin_end - 1e-12:
                index += 1
        return total

    def grow_analytic(self, start: float, end: float) -> None:
        """Advance the window over an application-limited span.

        Matches the tick kernel's behaviour when a transfer is active but
        has nothing sendable: the window keeps evolving and the send clock
        stays warm, yet no bytes are delivered and no samples are formed.
        """
        if end <= start or not self._usable(start):
            return
        self.tcp.advance_analytic(start, end - start,
                                  self.path.bandwidth_at(start))

    def account(self, delivered: float, dt: float,
                budget: Optional[float] = None) -> None:
        """Record ``delivered`` bytes carried during a tick of ``dt``.

        ``budget`` is what the subflow *could* have carried this tick.  A
        delivery well below the budget is application-limited (e.g. the
        last sliver of a chunk) and says nothing about path capacity, so —
        like kernel rate samplers — it is excluded from the throughput
        estimate.  Only network-limited ticks produce samples.
        """
        self.total_bytes += delivered
        if delivered <= 0:
            return
        network_limited = budget is None or delivered >= 0.7 * budget
        if network_limited:
            self._sample_bytes += delivered
            self._sample_busy += dt
            if self._sample_busy >= self._sample_interval:
                self.estimator.update(self._sample_bytes / self._sample_busy)
                self._sample_bytes = 0.0
                self._sample_busy = 0.0

    def throughput_estimate(self) -> Optional[float]:
        """Predicted throughput (bytes/second); None before any sample."""
        return self.estimator.predict()

    def reset_tcp(self) -> None:
        """Reset congestion state (new connection semantics)."""
        self.tcp.reset()

    def __repr__(self) -> str:
        return (f"<Subflow {self.name} total={self.total_bytes / 1e6:.2f}MB "
                f"est={self.throughput_estimate()}>")
