"""MP-DASH: Adaptive Video Streaming Over Preference-Aware Multipath.

A from-scratch Python reproduction of the CoNEXT 2016 system: the
deadline-aware MP-DASH scheduler, the video adapter, and every substrate —
an MPTCP transport simulator, a DASH stack with four rate-adaptation
algorithms, Holt-Winters throughput prediction, a radio energy model, the
paper's workloads, and the multipath video analysis tool.

Quick start::

    from repro import SessionConfig, run_session

    result = run_session(SessionConfig(abr="festive", mpdash=True,
                                       deadline_mode="rate",
                                       wifi_mbps=3.8, lte_mbps=3.0))
    print(result.metrics.cellular_bytes, result.metrics.radio_energy)
"""

from .abr import abr_names, make_abr
from .analysis import MultipathVideoAnalyzer, SessionMetrics
from .core import (DeadlineAwareScheduler, MpDashAdapter, MpDashSocket,
                   Preference, prefer_cellular, prefer_wifi, simulate_online,
                   simulate_oracle, solve_offline)
from .dash import DashPlayer, DashServer, Manifest, VideoAsset
from .experiments import (FileDownloadConfig, SchemeComparison, SessionConfig,
                          SessionResult, SessionSummary, SweepResult,
                          expand_grid, run_file_download, run_schemes,
                          run_session, run_sweep)
from .mptcp import MptcpConnection
from .net import (BandwidthTrace, Path, Simulator, cellular_path, mbps,
                  wifi_path)
from .workloads import (MobilityScenario, field_study_locations,
                        table1_profiles, video_asset)

__version__ = "1.0.0"

__all__ = [
    "BandwidthTrace", "DashPlayer", "DashServer", "DeadlineAwareScheduler",
    "FileDownloadConfig", "Manifest", "MobilityScenario", "MpDashAdapter",
    "MpDashSocket", "MptcpConnection", "MultipathVideoAnalyzer", "Path",
    "Preference", "SchemeComparison", "SessionConfig", "SessionMetrics",
    "SessionResult", "SessionSummary", "Simulator", "SweepResult",
    "VideoAsset", "abr_names", "cellular_path", "expand_grid",
    "field_study_locations", "make_abr", "mbps",
    "prefer_cellular", "prefer_wifi", "run_file_download", "run_schemes",
    "run_session", "run_sweep", "simulate_online", "simulate_oracle",
    "solve_offline", "table1_profiles", "video_asset", "wifi_path",
]
